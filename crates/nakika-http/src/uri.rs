//! URI parsing and the `.nakika.net` hostname rewriting scheme.

use crate::error::{HttpError, Result};
use std::fmt;

/// A parsed HTTP URI.
///
/// Na Kika scripts predicate on URL components (server name, port, path) and
/// the architecture rewrites hostnames by appending `.nakika.net` so that the
/// network's name servers can redirect clients to nearby edge nodes
/// (paper §3).  This type supports both uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Uri {
    /// URI scheme, lower-cased (`http` or `https`).
    pub scheme: String,
    /// Host name, lower-cased.
    pub host: String,
    /// Port; defaults to 80 for http and 443 for https.
    pub port: u16,
    /// Path starting with `/`.
    pub path: String,
    /// Query string without the leading `?`, if any.
    pub query: Option<String>,
}

/// The domain suffix appended to hostnames to route requests through Na Kika.
pub const NAKIKA_SUFFIX: &str = ".nakika.net";

impl Uri {
    /// Parses an absolute URI (`http://host[:port]/path?query`) or an
    /// origin-form path (`/path?query`, in which case `host` is empty).
    pub fn parse(input: &str) -> Result<Uri> {
        let input = input.trim();
        if input.is_empty() {
            return Err(HttpError::InvalidUri("empty".to_string()));
        }
        if let Some(rest) = input.strip_prefix('/') {
            let (path, query) = split_query(&format!("/{rest}"));
            return Ok(Uri {
                scheme: "http".to_string(),
                host: String::new(),
                port: 80,
                path,
                query,
            });
        }
        let (scheme, rest) = match input.find("://") {
            Some(idx) => (input[..idx].to_ascii_lowercase(), &input[idx + 3..]),
            None => ("http".to_string(), input),
        };
        if scheme != "http" && scheme != "https" {
            return Err(HttpError::InvalidUri(format!(
                "unsupported scheme: {scheme}"
            )));
        }
        let default_port = if scheme == "https" { 443 } else { 80 };
        let (authority, path_and_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(HttpError::InvalidUri(format!("missing host in: {input}")));
        }
        let (host, port) = match authority.rfind(':') {
            Some(idx) => {
                let port: u16 = authority[idx + 1..]
                    .parse()
                    .map_err(|_| HttpError::InvalidUri(format!("bad port in: {authority}")))?;
                (authority[..idx].to_ascii_lowercase(), port)
            }
            None => (authority.to_ascii_lowercase(), default_port),
        };
        if host.is_empty() {
            return Err(HttpError::InvalidUri(format!("empty host in: {input}")));
        }
        let (path, query) = split_query(path_and_query);
        Ok(Uri {
            scheme,
            host,
            port,
            path,
            query,
        })
    }

    /// Builds a URI from parts with scheme `http`.
    pub fn http(host: &str, port: u16, path: &str) -> Uri {
        let (path, query) = split_query(path);
        Uri {
            scheme: "http".to_string(),
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        }
    }

    /// `host:port` authority form, omitting the default port.
    pub fn authority(&self) -> String {
        let default = if self.scheme == "https" { 443 } else { 80 };
        if self.port == default {
            self.host.clone()
        } else {
            format!("{}:{}", self.host, self.port)
        }
    }

    /// Path plus query string, as used on the request line.
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// The "site" a URI belongs to, which Na Kika uses to locate the
    /// site-specific `nakika.js` script and to account resource usage per
    /// site.  This is simply the authority.
    pub fn site(&self) -> String {
        self.authority()
    }

    /// True if the host carries the `.nakika.net` redirection suffix.
    pub fn is_nakika(&self) -> bool {
        self.host.ends_with(NAKIKA_SUFFIX) || self.host == "nakika.net"
    }

    /// Appends `.nakika.net` to the host (the paper's URL-rewriting step for
    /// directing clients through the edge network).  No-op if already present.
    pub fn to_nakika(&self) -> Uri {
        if self.is_nakika() {
            return self.clone();
        }
        let mut u = self.clone();
        u.host = format!("{}{}", self.host, NAKIKA_SUFFIX);
        u
    }

    /// Strips the `.nakika.net` suffix, recovering the origin-server URI.
    pub fn to_origin(&self) -> Uri {
        match self.host.strip_suffix(NAKIKA_SUFFIX) {
            Some(stripped) if !stripped.is_empty() => {
                let mut u = self.clone();
                u.host = stripped.to_string();
                u
            }
            _ => self.clone(),
        }
    }

    /// Parses the query string into key/value pairs (used for the SIMM port's
    /// URL-based session identifiers).
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        if let Some(q) = &self.query {
            for pair in q.split('&') {
                if pair.is_empty() {
                    continue;
                }
                match pair.find('=') {
                    Some(idx) => out.push((pair[..idx].to_string(), pair[idx + 1..].to_string())),
                    None => out.push((pair.to_string(), String::new())),
                }
            }
        }
        out
    }

    /// The file extension of the path, if any (used to detect `.nkp` pages).
    pub fn extension(&self) -> Option<&str> {
        let last = self.path.rsplit('/').next()?;
        let dot = last.rfind('.')?;
        if dot + 1 < last.len() {
            Some(&last[dot + 1..])
        } else {
            None
        }
    }

    /// True if `self` falls under `prefix`, where a prefix is
    /// `host[/path-prefix]` as used by policy-object URL lists
    /// (e.g. `"med.nyu.edu"` or `"bmj.bmjjournals.com/cgi/reprint"`).
    pub fn matches_prefix(&self, prefix: &str) -> bool {
        let prefix = prefix.trim();
        if prefix.is_empty() {
            return false;
        }
        let (host_part, path_part) = match prefix.find('/') {
            Some(idx) => (&prefix[..idx], &prefix[idx..]),
            None => (prefix, ""),
        };
        let host_part = host_part.to_ascii_lowercase();
        // Host matches exactly or as a domain suffix ("nyu.edu" matches
        // "med.nyu.edu"); the comparison ignores any .nakika.net rewriting.
        let host = self.to_origin().host;
        let host_ok =
            host == host_part || host.ends_with(&format!(".{host_part}")) || host_part.is_empty();
        if !host_ok {
            return false;
        }
        path_part.is_empty() || self.path.starts_with(path_part)
    }
}

fn split_query(path_and_query: &str) -> (String, Option<String>) {
    match path_and_query.find('?') {
        Some(idx) => (
            path_and_query[..idx].to_string(),
            Some(path_and_query[idx + 1..].to_string()),
        ),
        None => (path_and_query.to_string(), None),
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.host.is_empty() {
            write!(f, "{}", self.path_and_query())
        } else {
            write!(
                f,
                "{}://{}{}",
                self.scheme,
                self.authority(),
                self.path_and_query()
            )
        }
    }
}

impl std::str::FromStr for Uri {
    type Err = HttpError;
    fn from_str(s: &str) -> Result<Self> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_uri() {
        let u = Uri::parse("http://med.nyu.edu:8080/simm/module1?student=42").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "med.nyu.edu");
        assert_eq!(u.port, 8080);
        assert_eq!(u.path, "/simm/module1");
        assert_eq!(u.query.as_deref(), Some("student=42"));
        assert_eq!(u.authority(), "med.nyu.edu:8080");
    }

    #[test]
    fn parses_origin_form() {
        let u = Uri::parse("/index.html?a=1").unwrap();
        assert_eq!(u.host, "");
        assert_eq!(u.path, "/index.html");
        assert_eq!(u.query.as_deref(), Some("a=1"));
    }

    #[test]
    fn default_ports() {
        assert_eq!(Uri::parse("http://a.com/").unwrap().port, 80);
        assert_eq!(Uri::parse("https://a.com/").unwrap().port, 443);
        assert_eq!(Uri::parse("http://a.com/").unwrap().authority(), "a.com");
    }

    #[test]
    fn missing_path_becomes_root() {
        let u = Uri::parse("http://example.org").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn rejects_bad_uris() {
        assert!(Uri::parse("").is_err());
        assert!(Uri::parse("ftp://a.com/").is_err());
        assert!(Uri::parse("http:///path").is_err());
        assert!(Uri::parse("http://a.com:notaport/").is_err());
    }

    #[test]
    fn nakika_rewriting_round_trips() {
        let u = Uri::parse("http://med.nyu.edu/simm/").unwrap();
        let n = u.to_nakika();
        assert_eq!(n.host, "med.nyu.edu.nakika.net");
        assert!(n.is_nakika());
        assert_eq!(n.to_origin().host, "med.nyu.edu");
        // idempotent
        assert_eq!(n.to_nakika().host, n.host);
        assert!(!u.is_nakika());
    }

    #[test]
    fn prefix_matching_host_and_path() {
        let u = Uri::parse("http://bmj.bmjjournals.com/cgi/reprint/123").unwrap();
        assert!(u.matches_prefix("bmj.bmjjournals.com/cgi/reprint"));
        assert!(u.matches_prefix("bmj.bmjjournals.com"));
        assert!(u.matches_prefix("bmjjournals.com"));
        assert!(!u.matches_prefix("bmj.bmjjournals.com/other"));
        assert!(!u.matches_prefix("nejm.org"));
    }

    #[test]
    fn prefix_matching_ignores_nakika_suffix() {
        let u = Uri::parse("http://med.nyu.edu.nakika.net/simm/").unwrap();
        assert!(u.matches_prefix("med.nyu.edu"));
        assert!(u.matches_prefix("nyu.edu"));
    }

    #[test]
    fn query_pairs_and_extension() {
        let u = Uri::parse("http://a.com/page.nkp?x=1&y=&flag").unwrap();
        assert_eq!(u.extension(), Some("nkp"));
        let q = u.query_pairs();
        assert_eq!(q[0], ("x".to_string(), "1".to_string()));
        assert_eq!(q[1], ("y".to_string(), "".to_string()));
        assert_eq!(q[2], ("flag".to_string(), "".to_string()));
        assert_eq!(Uri::parse("http://a.com/dir/").unwrap().extension(), None);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "http://a.com/",
            "http://a.com:8080/x?y=1",
            "https://b.org/path",
        ] {
            let u = Uri::parse(s).unwrap();
            assert_eq!(Uri::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn site_is_authority() {
        let u = Uri::parse("http://med.nyu.edu/simm/x").unwrap();
        assert_eq!(u.site(), "med.nyu.edu");
    }
}
