//! Probabilistic verification of processed content (paper §6).
//!
//! A trusted registry maintains Na Kika membership.  Clients forward a
//! fraction of the content they receive to a *different* proxy, which repeats
//! the processing; if the two results differ, the original proxy is reported.
//! The registry evicts nodes whose mismatch reports cross a threshold.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Membership status of an edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The node is a member in good standing.
    Active,
    /// The node has been evicted for serving content that failed
    /// re-execution checks.
    Evicted,
    /// The node is not known to the registry.
    Unknown,
}

#[derive(Debug, Clone, Default)]
struct NodeRecord {
    checks: u64,
    mismatches: u64,
    evicted: bool,
}

/// The trusted membership registry.
pub struct VerificationRegistry {
    nodes: RwLock<HashMap<String, NodeRecord>>,
    /// A node is evicted once it accumulates at least `min_reports` mismatch
    /// reports *and* its mismatch ratio exceeds `mismatch_threshold`.
    mismatch_threshold: f64,
    min_reports: u64,
}

impl VerificationRegistry {
    /// Creates a registry with the given eviction policy.
    pub fn new(mismatch_threshold: f64, min_reports: u64) -> VerificationRegistry {
        VerificationRegistry {
            nodes: RwLock::new(HashMap::new()),
            mismatch_threshold,
            min_reports,
        }
    }

    /// Registers a node as a member.
    pub fn join(&self, node: &str) {
        self.nodes.write().entry(node.to_string()).or_default();
    }

    /// Current status of a node.
    pub fn status(&self, node: &str) -> NodeStatus {
        match self.nodes.read().get(node) {
            None => NodeStatus::Unknown,
            Some(r) if r.evicted => NodeStatus::Evicted,
            Some(_) => NodeStatus::Active,
        }
    }

    /// Records the outcome of one re-execution check against `node`:
    /// `matched` is true when the re-processed content equalled what the node
    /// served.  Returns the node's status after applying the eviction policy.
    pub fn report_check(&self, node: &str, matched: bool) -> NodeStatus {
        let mut nodes = self.nodes.write();
        let record = nodes.entry(node.to_string()).or_default();
        record.checks += 1;
        if !matched {
            record.mismatches += 1;
        }
        if !record.evicted
            && record.mismatches >= self.min_reports
            && (record.mismatches as f64 / record.checks as f64) > self.mismatch_threshold
        {
            record.evicted = true;
        }
        if record.evicted {
            NodeStatus::Evicted
        } else {
            NodeStatus::Active
        }
    }

    /// The fraction of checks against `node` that mismatched (0 when the node
    /// has never been checked).
    pub fn mismatch_ratio(&self, node: &str) -> f64 {
        match self.nodes.read().get(node) {
            Some(r) if r.checks > 0 => r.mismatches as f64 / r.checks as f64,
            _ => 0.0,
        }
    }

    /// All currently active members.
    pub fn active_members(&self) -> Vec<String> {
        self.nodes
            .read()
            .iter()
            .filter(|(_, r)| !r.evicted)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Decides (deterministically, from a per-request sample value in
    /// `[0, 1)`) whether a client should forward this response for
    /// verification, given the sampling fraction the deployment chose.
    pub fn should_verify(sample: f64, fraction: f64) -> bool {
        sample < fraction
    }
}

impl Default for VerificationRegistry {
    fn default() -> Self {
        // Paper-spirit defaults: evict after repeated, predominantly
        // mismatching checks.
        VerificationRegistry::new(0.5, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_lifecycle() {
        let reg = VerificationRegistry::default();
        assert_eq!(reg.status("edge-1"), NodeStatus::Unknown);
        reg.join("edge-1");
        assert_eq!(reg.status("edge-1"), NodeStatus::Active);
        assert!(reg.active_members().contains(&"edge-1".to_string()));
    }

    #[test]
    fn honest_node_survives_many_checks() {
        let reg = VerificationRegistry::default();
        reg.join("honest");
        for _ in 0..1000 {
            assert_eq!(reg.report_check("honest", true), NodeStatus::Active);
        }
        assert_eq!(reg.mismatch_ratio("honest"), 0.0);
    }

    #[test]
    fn misbehaving_node_is_evicted() {
        let reg = VerificationRegistry::default();
        reg.join("tamperer");
        // Three mismatches in a row exceed both the count and ratio bars.
        reg.report_check("tamperer", false);
        reg.report_check("tamperer", false);
        let status = reg.report_check("tamperer", false);
        assert_eq!(status, NodeStatus::Evicted);
        assert_eq!(reg.status("tamperer"), NodeStatus::Evicted);
        assert!(!reg.active_members().contains(&"tamperer".to_string()));
    }

    #[test]
    fn occasional_mismatch_below_ratio_is_tolerated() {
        // e.g. legitimately different processing output due to racing cache
        // refreshes should not evict a node that is mostly correct.
        let reg = VerificationRegistry::new(0.5, 3);
        reg.join("mostly-good");
        for i in 0..100 {
            reg.report_check("mostly-good", i % 10 != 0);
        }
        assert_eq!(reg.status("mostly-good"), NodeStatus::Active);
        assert!(reg.mismatch_ratio("mostly-good") < 0.2);
    }

    #[test]
    fn sampling_decision() {
        assert!(VerificationRegistry::should_verify(0.01, 0.05));
        assert!(!VerificationRegistry::should_verify(0.9, 0.05));
    }
}
