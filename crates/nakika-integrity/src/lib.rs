//! Content integrity for Na Kika (paper §6).
//!
//! Na Kika trusts edge-side nodes to cache and process content faithfully; to
//! relax that assumption the paper describes two mechanisms, both implemented
//! here:
//!
//! 1. **Static content integrity** — origin servers attach an
//!    `X-Content-SHA256` header (hash of the body) and an `X-Signature`
//!    header (keyed signature over the hash *and* the cache-control
//!    metadata), and switch to *absolute* expiration times so untrusted nodes
//!    need not be trusted to decrement relative lifetimes.
//! 2. **Probabilistic verification of processed content** — a trusted
//!    registry tracks membership; clients forward a fraction of received
//!    content to another proxy which re-executes the processing; mismatches
//!    are reported and repeat offenders are evicted.
//!
//! The signature is an HMAC-style keyed hash rather than a public-key
//! signature (see DESIGN.md for the substitution rationale); the protocol
//! structure — what is covered by the signature and how verification and
//! eviction proceed — follows the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod sha256;
pub mod sign;

pub use registry::{NodeStatus, VerificationRegistry};
pub use sha256::{sha256, sha256_hex};
pub use sign::{sign_response, verify_response, SigningKey, VerifyError};

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::Response;

    #[test]
    fn end_to_end_sign_and_verify() {
        let key = SigningKey::new(b"origin-secret");
        let mut resp = Response::ok("text/html", "<p>medical study results</p>");
        sign_response(&mut resp, &key, 1_000, 3_600);
        assert!(verify_response(&resp, &key, 2_000).is_ok());
    }
}
