//! Signing and verifying responses with `X-Content-SHA256` / `X-Signature`.

use crate::sha256::{sha256, sha256_hex, to_hex};
use nakika_http::{cache_control, Response};
use std::time::Duration;

/// Header carrying the body hash (paper §6).
pub const HASH_HEADER: &str = "X-Content-SHA256";
/// Header carrying the keyed signature over hash + cache metadata.
pub const SIGNATURE_HEADER: &str = "X-Signature";

/// A shared signing key held by the origin server (and by verifiers).
///
/// HMAC-SHA256 construction: `H((K ⊕ opad) || H((K ⊕ ipad) || m))`.
#[derive(Clone)]
pub struct SigningKey {
    key: [u8; 64],
}

impl SigningKey {
    /// Derives a signing key from arbitrary key material.
    pub fn new(material: &[u8]) -> SigningKey {
        let mut key = [0u8; 64];
        if material.len() <= 64 {
            key[..material.len()].copy_from_slice(material);
        } else {
            let digest = sha256(material);
            key[..32].copy_from_slice(&digest);
        }
        SigningKey { key }
    }

    /// Computes the HMAC-SHA256 of `message`.
    pub fn mac(&self, message: &[u8]) -> [u8; 32] {
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= self.key[i];
            opad[i] ^= self.key[i];
        }
        let mut inner = ipad.to_vec();
        inner.extend_from_slice(message);
        let inner_digest = sha256(&inner);
        let mut outer = opad.to_vec();
        outer.extend_from_slice(&inner_digest);
        sha256(&outer)
    }
}

/// Reasons a response fails integrity verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The hash or signature header is missing.
    MissingHeaders,
    /// The body does not match `X-Content-SHA256`.
    BodyMismatch,
    /// The signature does not cover the presented hash and cache metadata.
    BadSignature,
    /// The absolute expiration time lies in the past (stale content replayed
    /// by a misbehaving node).
    Expired,
    /// The response lacks the absolute expiration metadata the scheme
    /// requires.
    MissingExpiry,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VerifyError::MissingHeaders => "integrity headers missing",
            VerifyError::BodyMismatch => "body hash mismatch",
            VerifyError::BadSignature => "signature invalid",
            VerifyError::Expired => "absolute expiration in the past",
            VerifyError::MissingExpiry => "absolute expiration missing",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VerifyError {}

/// The byte string covered by the signature: body hash plus the absolute
/// cache expiration metadata (so a malicious node can neither alter the body
/// nor extend the content's lifetime).
fn signed_payload(hash_hex: &str, date_secs: &str, expires_secs: &str) -> Vec<u8> {
    format!("{hash_hex}\n{date_secs}\n{expires_secs}").into_bytes()
}

/// Signs a response: rewrites its cache metadata to absolute times
/// (`now_secs` + `lifetime_secs`) and attaches the hash and signature
/// headers.  Origins call this; the hash may be precomputed offline exactly
/// as the paper notes.
pub fn sign_response(resp: &mut Response, key: &SigningKey, now_secs: u64, lifetime_secs: u64) {
    cache_control::set_absolute_expiry(resp, now_secs, Duration::from_secs(lifetime_secs));
    let hash = sha256_hex(&resp.body.to_bytes());
    let date = resp.headers.get("date-seconds").unwrap_or("0").to_string();
    let expires = resp
        .headers
        .get("expires-seconds")
        .unwrap_or("0")
        .to_string();
    let signature = to_hex(&key.mac(&signed_payload(&hash, &date, &expires)));
    resp.headers.set(HASH_HEADER, hash);
    resp.headers.set(SIGNATURE_HEADER, signature);
}

/// Verifies a response received from an untrusted cache: the body must match
/// the hash, the signature must cover the hash and expiry metadata, and the
/// absolute expiration must still lie in the future at `now_secs`.
pub fn verify_response(
    resp: &Response,
    key: &SigningKey,
    now_secs: u64,
) -> Result<(), VerifyError> {
    let hash = resp
        .headers
        .get(HASH_HEADER)
        .ok_or(VerifyError::MissingHeaders)?
        .to_string();
    let signature = resp
        .headers
        .get(SIGNATURE_HEADER)
        .ok_or(VerifyError::MissingHeaders)?
        .to_string();
    let date = resp
        .headers
        .get("date-seconds")
        .ok_or(VerifyError::MissingExpiry)?
        .to_string();
    let expires = resp
        .headers
        .get("expires-seconds")
        .ok_or(VerifyError::MissingExpiry)?
        .to_string();

    if sha256_hex(&resp.body.to_bytes()) != hash {
        return Err(VerifyError::BodyMismatch);
    }
    let expected = to_hex(&key.mac(&signed_payload(&hash, &date, &expires)));
    if !constant_time_eq(expected.as_bytes(), signature.as_bytes()) {
        return Err(VerifyError::BadSignature);
    }
    let expires_at: u64 = expires.parse().map_err(|_| VerifyError::MissingExpiry)?;
    if expires_at < now_secs {
        return Err(VerifyError::Expired);
    }
    Ok(())
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::Response;

    // RFC 4231 test case 2 for HMAC-SHA256.
    #[test]
    fn hmac_test_vector() {
        let key = SigningKey::new(b"Jefe");
        let mac = key.mac(b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    fn signed() -> (Response, SigningKey) {
        let key = SigningKey::new(b"secret");
        let mut resp = Response::ok("text/html", "<p>study</p>");
        sign_response(&mut resp, &key, 1_000, 600);
        (resp, key)
    }

    #[test]
    fn valid_signature_passes() {
        let (resp, key) = signed();
        assert!(verify_response(&resp, &key, 1_500).is_ok());
        assert!(resp.headers.contains(HASH_HEADER));
        assert!(resp.headers.contains(SIGNATURE_HEADER));
        // Absolute, not relative, expiry.
        assert_eq!(resp.headers.get("expires-seconds"), Some("1600"));
        assert!(!resp.headers.contains("cache-control"));
    }

    #[test]
    fn tampered_body_is_detected() {
        let (mut resp, key) = signed();
        resp.set_body("<p>falsified study</p>");
        assert_eq!(
            verify_response(&resp, &key, 1_500),
            Err(VerifyError::BodyMismatch)
        );
    }

    #[test]
    fn extended_lifetime_is_detected() {
        let (mut resp, key) = signed();
        // A malicious node tries to keep the content alive longer.
        resp.headers.set("Expires-Seconds", "999999");
        assert_eq!(
            verify_response(&resp, &key, 1_500),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn stale_replay_is_detected() {
        let (resp, key) = signed();
        assert_eq!(
            verify_response(&resp, &key, 5_000),
            Err(VerifyError::Expired)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let (resp, _) = signed();
        let other = SigningKey::new(b"not the key");
        assert_eq!(
            verify_response(&resp, &other, 1_100),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn unsigned_response_is_rejected() {
        let resp = Response::ok("text/html", "x");
        let key = SigningKey::new(b"secret");
        assert_eq!(
            verify_response(&resp, &key, 1_000),
            Err(VerifyError::MissingHeaders)
        );
    }

    #[test]
    fn long_key_material_is_hashed() {
        let key = SigningKey::new(&[7u8; 200]);
        let mut resp = Response::ok("text/plain", "x");
        sign_response(&mut resp, &key, 0, 10);
        assert!(verify_response(&resp, &key, 5).is_ok());
    }
}
