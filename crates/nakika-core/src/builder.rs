//! Fluent construction of Na Kika nodes as [`HttpService`] stacks.
//!
//! [`NodeBuilder`] is the only way to configure a node: it owns the
//! [`NodeConfig`] literal, binds the node to its origin fetch path, attaches
//! the overlay, and wraps the resulting service in any middleware
//! [`Layer`]s.  What comes out is a [`NodeHandle`]: the layered service plus
//! a handle on the node for statistics and stores.
//!
//! ```
//! use nakika_core::builder::NodeBuilder;
//! use nakika_core::service::{HttpService, RequestCtx};
//! use nakika_http::{Request, Response};
//!
//! let edge = NodeBuilder::plain_proxy("edge-1")
//!     .origin_fn(|_req| Response::ok("text/html", "hello").with_header("Cache-Control", "max-age=60"))
//!     .build();
//! let first = edge.call(Request::get("http://site.example/"), &RequestCtx::at(10)).unwrap();
//! let again = edge.call(Request::get("http://site.example/"), &RequestCtx::at(20)).unwrap();
//! assert_eq!(first.body.to_text(), again.body.to_text());
//! assert_eq!(edge.node().stats().cache_hits, 1);
//! ```

use crate::gossip::{apply_events, gossip_exchange, gossip_probe_via, GossipService};
use crate::middleware::RedirectLayer;
use crate::node::{origin_from_fn, NaKikaNode, NodeConfig, NodeMode, OriginFetch};
use crate::peering;
use crate::pipeline::{CLIENT_WALL_URL, SERVER_WALL_URL};
use crate::programs::ScriptEngine;
use crate::resource::{ResourceKind, ResourceManagerConfig};
use crate::service::{
    layered, DispatchHint, HttpService, Layer, NakikaError, RelayPlan, RequestCtx,
};
use nakika_http::pattern::Cidr;
use nakika_http::{Request, Response};
use nakika_overlay::{Membership, NodeId, Overlay, ProbeAction};
use nakika_state::Update;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The service adapter over a [`NaKikaNode`]: binds the node to its origin
/// fetch path so transports only ever see [`HttpService`].
pub struct NodeService {
    node: Arc<NaKikaNode>,
    origin: Arc<dyn OriginFetch>,
}

impl NodeService {
    /// The wrapped node.
    pub fn node(&self) -> &Arc<NaKikaNode> {
        &self.node
    }
}

impl HttpService for NodeService {
    fn call(&self, mut req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        if req.client_ip.is_unspecified() && !ctx.client_ip.is_unspecified() {
            req.client_ip = ctx.client_ip;
        }
        self.node.process(req, ctx.arrival_secs, &self.origin)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        self.node.dispatch_hint(req, ctx.arrival_secs)
    }

    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        self.node.relay_plan(req, ctx.arrival_secs, &self.origin)
    }
}

/// An origin for nodes built without one: every fetch fails upstream.
struct NoOrigin;

impl OriginFetch for NoOrigin {
    fn fetch_origin(&self, request: &Request) -> Response {
        NakikaError::Upstream {
            url: request.uri.to_string(),
            reason: "no origin configured".to_string(),
        }
        .to_response()
    }
}

/// The background thread pushing hot cache entries to successor peers.
///
/// It drains the node's replication bus (fed by the fetch path when a key
/// this node owns crosses the hot threshold) and issues one peer fetch per
/// successor, fully draining each response so the successor's cache tee
/// completes.  Stops and joins when the owning [`NodeHandle`] drops.
struct ReplicationWorker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ReplicationWorker {
    fn spawn(
        node: Arc<NaKikaNode>,
        overlay: Arc<Overlay>,
        id: NodeId,
        origin: Arc<dyn OriginFetch>,
    ) -> Option<ReplicationWorker> {
        let shared = node.replication()?.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let subscription = shared
            .bus
            .subscribe(&shared.topic, &format!("{}#worker", node.name()));
        let handle = std::thread::Builder::new()
            .name(format!("nakika-repl-{}", node.name()))
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let mut idle = true;
                    while let Some(message) = shared.bus.receive(&subscription) {
                        idle = false;
                        if let Some(update) = Update::decode(&message.payload) {
                            push_to_successors(&update, &overlay, id, &origin, &node, &shared);
                        }
                        shared.bus.ack(&subscription, message.sequence);
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    if idle {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            })
            .expect("failed to spawn the replication worker thread");
        Some(ReplicationWorker {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for ReplicationWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The background thread driving the SWIM membership: it ticks
/// [`Membership::poll`], performs the probe actions over the node's
/// [`OriginFetch::fetch_peer`] transport (direct exchange, then indirect
/// probes through relays before calling a peer unreachable), and applies
/// the resulting roster events to the overlay.  Stops and joins when the
/// owning [`NodeHandle`] drops.
struct GossipWorker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl GossipWorker {
    fn spawn(
        name: &str,
        membership: Arc<Membership>,
        overlay: Arc<Overlay>,
        origin: Arc<dyn OriginFetch>,
    ) -> GossipWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        // Tick well below the probe interval so suspect timeouts and queued
        // failure hints are noticed promptly; `poll` itself rate-limits the
        // actual probes.
        let tick = Duration::from_millis((membership.config().probe_interval_ms / 4).clamp(5, 50));
        let handle = std::thread::Builder::new()
            .name(format!("nakika-gossip-{name}"))
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let (actions, events) = membership.poll();
                    apply_events(&overlay, &events);
                    for ProbeAction::Ping { name, addr } in actions {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        run_probe(&membership, &overlay, &origin, name.as_deref(), &addr);
                    }
                    std::thread::sleep(tick);
                }
            })
            .expect("failed to spawn the gossip worker thread");
        GossipWorker {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for GossipWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One probe: a direct digest exchange with `addr`; on failure, indirect
/// probes through up to `indirect_probes` alive relays (SWIM's ping-req)
/// before the target is reported unreachable.  Seed probes (`name` absent)
/// carry no verdict — the seed either answers and names itself through its
/// digest, or stays unknown.
fn run_probe(
    membership: &Arc<Membership>,
    overlay: &Arc<Overlay>,
    origin: &Arc<dyn OriginFetch>,
    name: Option<&str>,
    addr: &str,
) {
    if gossip_exchange(membership, overlay, origin, addr).is_ok() {
        if let Some(name) = name {
            membership.on_ack(name);
        }
        return;
    }
    let Some(name) = name else {
        return;
    };
    for relay in membership.relay_candidates(name) {
        if gossip_probe_via(membership, overlay, origin, &relay.addr, addr).is_ok() {
            membership.on_ack(name);
            return;
        }
    }
    membership.on_probe_failed(name);
}

/// Pushes one hot entry to the key's successor peers by fetching the URL
/// *through* each successor's proxy front-end: the successor misses locally,
/// pulls the entry from the owner over the regular peer path, and tees it
/// into its own cache.  The [`peering::REPLICATE_HEADER`] mark keeps the
/// push from re-triggering hot-entry accounting downstream.
fn push_to_successors(
    update: &Update,
    overlay: &Arc<Overlay>,
    self_id: NodeId,
    origin: &Arc<dyn OriginFetch>,
    node: &Arc<NaKikaNode>,
    shared: &crate::node::ReplicationShared,
) {
    let own_addr = node.public_addr();
    for member in overlay.successors_of(&update.key, shared.successors) {
        if member.id == self_id {
            continue;
        }
        let Some(addr) = member.addr else {
            continue;
        };
        if own_addr.as_deref() == Some(addr.as_str()) {
            continue;
        }
        let request = Request::get(&update.value).with_header(peering::REPLICATE_HEADER, "1");
        if let Ok(mut response) = origin.fetch_peer(&addr, &request) {
            // Drain the streamed body so the successor's cache tee completes;
            // only then has the entry actually been replicated.
            if response.status.is_success() && response.body.buffer().is_ok() {
                node.record_replication_push();
            }
        }
    }
}

/// A built node: the layered [`HttpService`] stack plus the node it wraps.
///
/// The handle itself implements [`HttpService`], so call sites can treat it
/// as the service; [`NodeHandle::service`] clones out the stack for
/// transports that take `Arc<dyn HttpService>`.  Dropping the handle stops
/// the node's replication worker, if one was configured.
pub struct NodeHandle {
    node: Arc<NaKikaNode>,
    service: Arc<dyn HttpService>,
    _replication_worker: Option<ReplicationWorker>,
    _gossip_worker: Option<GossipWorker>,
}

impl NodeHandle {
    /// The node, for statistics, stores and cache inspection.
    pub fn node(&self) -> &Arc<NaKikaNode> {
        &self.node
    }

    /// The layered service stack.
    pub fn service(&self) -> Arc<dyn HttpService> {
        self.service.clone()
    }

    /// The gossip membership, if [`NodeBuilder::gossip`] configured one.
    pub fn membership(&self) -> Option<Arc<Membership>> {
        self.node.gossip().cloned()
    }
}

impl HttpService for NodeHandle {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        self.service.call(req, ctx)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        self.service.dispatch_hint(req, ctx)
    }

    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        self.service.relay_plan(req, ctx)
    }
}

/// Fluent builder for Na Kika nodes; see the [module docs](self) for an
/// example.
pub struct NodeBuilder {
    config: NodeConfig,
    overlay: Option<(Arc<Overlay>, NodeId)>,
    origin: Option<Arc<dyn OriginFetch>>,
    layers: Vec<Box<dyn Layer>>,
    public_addr: Option<String>,
    replicate: Option<(usize, u32)>,
    gossip: Option<Arc<Membership>>,
    redirect_to_owner: bool,
}

impl NodeBuilder {
    fn with_mode(name: &str, mode: NodeMode) -> NodeBuilder {
        let resource = ResourceManagerConfig {
            enabled: mode == NodeMode::Scripted,
            ..ResourceManagerConfig::default()
        };
        NodeBuilder {
            config: NodeConfig {
                name: name.to_string(),
                mode,
                client_wall_url: CLIENT_WALL_URL.to_string(),
                server_wall_url: SERVER_WALL_URL.to_string(),
                cache_capacity_bytes: 256 * 1024 * 1024,
                cache_shards: 0,
                heuristic_ttl: Duration::from_secs(60),
                script_ttl: Duration::from_secs(300),
                local_networks: Vec::new(),
                resource,
                control_period_secs: 5,
                hard_state_quota: 16 * 1024 * 1024,
                script_engine: ScriptEngine::default(),
            },
            overlay: None,
            origin: None,
            layers: Vec::new(),
            public_addr: None,
            replicate: None,
            gossip: None,
            redirect_to_owner: false,
        }
    }

    /// A full scripted node named `name` with default knobs.
    pub fn scripted(name: &str) -> NodeBuilder {
        NodeBuilder::with_mode(name, NodeMode::Scripted)
    }

    /// A plain Apache-style caching proxy (the `Proxy` baseline).
    pub fn plain_proxy(name: &str) -> NodeBuilder {
        NodeBuilder::with_mode(name, NodeMode::PlainProxy)
    }

    /// A proxy with DHT integration but no scripting (the `DHT` baseline).
    pub fn proxy_with_dht(name: &str) -> NodeBuilder {
        NodeBuilder::with_mode(name, NodeMode::ProxyWithDht)
    }

    /// Proxy-cache capacity in bytes.
    pub fn cache_capacity_bytes(mut self, bytes: usize) -> NodeBuilder {
        self.config.cache_capacity_bytes = bytes;
        self
    }

    /// Number of proxy-cache shards.  The default (`0`) derives the count
    /// from the capacity; pin it when a deployment knows its concurrency —
    /// more shards cut lock contention at the cost of per-shard (rather
    /// than global) byte budgets.
    pub fn cache_shards(mut self, shards: usize) -> NodeBuilder {
        self.config.cache_shards = shards;
        self
    }

    /// Heuristic freshness for responses without explicit expiration.
    pub fn heuristic_ttl(mut self, ttl: Duration) -> NodeBuilder {
        self.config.heuristic_ttl = ttl;
        self
    }

    /// Freshness applied to compiled stages without explicit expiration.
    pub fn script_ttl(mut self, ttl: Duration) -> NodeBuilder {
        self.config.script_ttl = ttl;
        self
    }

    /// URLs of the client- and server-side administrative control scripts.
    pub fn wall_urls(mut self, client: &str, server: &str) -> NodeBuilder {
        self.config.client_wall_url = client.to_string();
        self.config.server_wall_url = server.to_string();
        self
    }

    /// Adds one address block considered local to the hosting organisation.
    pub fn local_network(mut self, cidr: Cidr) -> NodeBuilder {
        self.config.local_networks.push(cidr);
        self
    }

    /// Replaces the set of local address blocks.
    pub fn local_networks(mut self, cidrs: Vec<Cidr>) -> NodeBuilder {
        self.config.local_networks = cidrs;
        self
    }

    /// Seconds between executions of the congestion-control procedure.
    pub fn control_period_secs(mut self, secs: u64) -> NodeBuilder {
        self.config.control_period_secs = secs;
        self
    }

    /// Per-site hard-state quota in bytes.
    pub fn hard_state_quota(mut self, bytes: usize) -> NodeBuilder {
        self.config.hard_state_quota = bytes;
        self
    }

    /// Which engine executes NkScript on this node.  The default is the
    /// bytecode VM ([`ScriptEngine::Vm`]); [`ScriptEngine::Interp`] selects
    /// the tree-walking reference interpreter (used for debugging and as
    /// the `bench_scripted` ablation baseline — interpreter-run pipelines
    /// are always dispatched `MayBlock`).
    pub fn script_engine(mut self, engine: ScriptEngine) -> NodeBuilder {
        self.config.script_engine = engine;
        self
    }

    /// Sets the node's capacity per control period for one resource.
    pub fn resource_capacity(mut self, kind: ResourceKind, capacity: f64) -> NodeBuilder {
        self.config.resource.capacity.insert(kind, capacity);
        self
    }

    /// Disables congestion-based resource controls (the "without resource
    /// controls" experimental arm).
    pub fn without_resource_controls(mut self) -> NodeBuilder {
        self.config.resource.enabled = false;
        self
    }

    /// Attaches the node to a structured overlay under `id` (already joined
    /// by the caller).
    pub fn overlay(mut self, overlay: Arc<Overlay>, id: NodeId) -> NodeBuilder {
        self.overlay = Some((overlay, id));
        self
    }

    /// The base URL where the node's proxy front-end will be reachable, when
    /// known at build time.  Deployments binding to an ephemeral port call
    /// `NaKikaNode::set_public_addr` after the server starts instead.
    pub fn public_addr(mut self, addr: &str) -> NodeBuilder {
        self.public_addr = Some(addr.to_string());
        self
    }

    /// Enables hot-entry replication: after `threshold` local cache hits for
    /// a key this node owns under consistent hashing, a background worker
    /// pushes the entry to the key's `successors` next-closest peers, so the
    /// overlay keeps serving the key when its owner departs.  Requires an
    /// [`overlay`](Self::overlay) and an origin whose `fetch_peer` reaches
    /// real peers; without an overlay the setting is inert.
    pub fn replicate_hot(mut self, successors: usize, threshold: u32) -> NodeBuilder {
        self.replicate = Some((successors, threshold));
        self
    }

    /// Enables dynamic membership: the node serves the gossip exchange
    /// endpoint (`/__nakika/gossip`) and a background worker drives the
    /// SWIM-style probe loop, applying roster events to the overlay so key
    /// ownership re-homes as members join, fail and recover.  Requires an
    /// [`overlay`](Self::overlay) and an origin whose `fetch_peer` reaches
    /// real peers; without an overlay the setting is inert.  Probing stays
    /// dormant until `Membership::set_self_addr` is called (typically after
    /// the server binds its port).
    pub fn gossip(mut self, membership: Arc<Membership>) -> NodeBuilder {
        self.gossip = Some(membership);
        self
    }

    /// Answers cacheable client requests whose consistent-hash owner is
    /// another live member with a `307` to that owner (see
    /// [`RedirectLayer::route_to_owner`]) instead of relaying.  Requires
    /// [`overlay`](Self::overlay) and [`gossip`](Self::gossip) — without a
    /// live roster there is no "alive" to consult, so the setting is inert.
    pub fn redirect_to_owner(mut self) -> NodeBuilder {
        self.redirect_to_owner = true;
        self
    }

    /// How the node obtains resources it does not have cached.
    pub fn origin(mut self, origin: Arc<dyn OriginFetch>) -> NodeBuilder {
        self.origin = Some(origin);
        self
    }

    /// Convenience: an origin built from a closure.
    pub fn origin_fn<F>(self, f: F) -> NodeBuilder
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.origin(origin_from_fn(f))
    }

    /// Wraps the node in a middleware layer.  The first layer added becomes
    /// the outermost wrapper.
    pub fn layer(mut self, layer: impl Layer + 'static) -> NodeBuilder {
        self.layers.push(Box::new(layer));
        self
    }

    /// Builds the node and its layered service stack, spawning the
    /// replication worker when [`replicate_hot`](Self::replicate_hot) and an
    /// overlay are both configured.
    pub fn build(self) -> NodeHandle {
        let name = self.config.name.clone();
        let mut node = NaKikaNode::new(self.config);
        if let Some((overlay, id)) = &self.overlay {
            node.attach_overlay(overlay.clone(), *id);
        }
        if let Some((successors, threshold)) = self.replicate {
            node.attach_replication(Arc::new(crate::node::ReplicationShared::new(
                &name, successors, threshold,
            )));
        }
        if let Some(addr) = &self.public_addr {
            node.set_public_addr(addr);
        }
        // Gossip needs an overlay to apply roster events to; inert without.
        let gossip = match (&self.gossip, &self.overlay) {
            (Some(membership), Some((overlay, _))) => Some((membership.clone(), overlay.clone())),
            _ => None,
        };
        if let Some((membership, _)) = &gossip {
            node.attach_gossip(membership.clone());
        }
        let node = Arc::new(node);
        let origin = self.origin.unwrap_or_else(|| Arc::new(NoOrigin));
        // Owner-aware redirection rides the layer stack, but it needs the
        // built node (for its counter) and the live roster, so the builder
        // assembles it here rather than asking the caller to.  Innermost of
        // the caller's layers: access logging and admission still see the
        // requests it answers.
        let mut layers = self.layers;
        if self.redirect_to_owner {
            if let (Some((overlay, id)), Some(membership)) = (&self.overlay, &self.gossip) {
                layers.push(Box::new(RedirectLayer::owner_aware(
                    overlay.clone(),
                    *id,
                    membership.clone(),
                    node.clone(),
                )));
            }
        }
        let replication_worker = self.overlay.and_then(|(overlay, id)| {
            ReplicationWorker::spawn(node.clone(), overlay, id, origin.clone())
        });
        let mut base: Arc<dyn HttpService> = Arc::new(NodeService {
            node: node.clone(),
            origin: origin.clone(),
        });
        let mut gossip_worker = None;
        if let Some((membership, overlay)) = gossip {
            // The gossip endpoint wraps the node directly — inside every
            // middleware layer — so exchanges bypass redirection, admission
            // and logging, and the node's request counters never see them.
            base = Arc::new(GossipService::new(
                base,
                membership.clone(),
                overlay.clone(),
                origin.clone(),
            ));
            gossip_worker = Some(GossipWorker::spawn(&name, membership, overlay, origin));
        }
        let service = layered(base, layers);
        NodeHandle {
            node,
            service,
            _replication_worker: replication_worker,
            _gossip_worker: gossip_worker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::StatusCode;

    #[test]
    fn builder_defaults_mirror_the_paper_configurations() {
        let scripted = NodeBuilder::scripted("s").build();
        assert_eq!(scripted.node().config().mode, NodeMode::Scripted);
        assert!(scripted.node().config().resource.enabled);

        let proxy = NodeBuilder::plain_proxy("p").build();
        assert_eq!(proxy.node().config().mode, NodeMode::PlainProxy);
        assert!(!proxy.node().config().resource.enabled);

        let dht = NodeBuilder::proxy_with_dht("d").build();
        assert_eq!(dht.node().config().mode, NodeMode::ProxyWithDht);
        assert!(!dht.node().config().resource.enabled);
    }

    #[test]
    fn unconfigured_origin_surfaces_as_bad_gateway() {
        let edge = NodeBuilder::plain_proxy("p").build();
        let resp = edge
            .call(Request::get("http://site.example/x"), &RequestCtx::at(1))
            .unwrap();
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
        assert_eq!(resp.headers.get("X-Nakika-Error"), Some("upstream"));
    }

    #[test]
    fn ctx_client_ip_fills_unspecified_requests_only() {
        let edge = NodeBuilder::plain_proxy("p")
            .origin_fn(|req: &Request| Response::ok("text/plain", req.client_ip.to_string()))
            .build();
        let ctx = RequestCtx::at(1).with_client_ip("10.9.8.7".parse().unwrap());
        let resp = edge.call(Request::get("http://a.example/"), &ctx).unwrap();
        assert_eq!(resp.body.to_text(), "10.9.8.7");
        let explicit =
            Request::get("http://b.example/").with_client_ip("192.0.2.1".parse().unwrap());
        let resp = edge.call(explicit, &ctx).unwrap();
        assert_eq!(resp.body.to_text(), "192.0.2.1");
    }
}
