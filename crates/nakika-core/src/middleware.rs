//! Middleware layers over [`HttpService`]:
//! access logging, congestion-based admission, content-integrity
//! verification and latency-aware client redirection, each a wrappable
//! service so transports and the [`NodeBuilder`](crate::builder::NodeBuilder)
//! compose them freely.

use crate::node::NaKikaNode;
use crate::peering;
use crate::resource::{Admission, ResourceKind, ResourceManager};
use crate::service::{HttpService, Layer, NakikaError, RequestCtx};
use nakika_http::{Request, Response};
use nakika_integrity::{verify_response, SigningKey};
use nakika_overlay::{key_for, Location, Membership, NodeId, Overlay, PeerState};
use nakika_state::{AccessLog, LogEntry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Access logging
// ---------------------------------------------------------------------------

/// Records one [`LogEntry`] per exchange into a per-site [`AccessLog`],
/// including exchanges the inner stack rejected (the entry then carries the
/// error's default status mapping).
pub struct AccessLogLayer {
    log: Arc<AccessLog>,
}

impl AccessLogLayer {
    /// A logging layer writing to `log`.
    pub fn new(log: Arc<AccessLog>) -> AccessLogLayer {
        AccessLogLayer { log }
    }
}

impl Layer for AccessLogLayer {
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
        Arc::new(AccessLogged {
            inner,
            log: self.log.clone(),
        })
    }
}

struct AccessLogged {
    inner: Arc<dyn HttpService>,
    log: Arc<AccessLog>,
}

impl HttpService for AccessLogged {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        let site = req.site();
        let method = req.method.as_str().to_string();
        let url = req.uri.to_string();
        let client = if req.client_ip.is_unspecified() {
            ctx.client_ip
        } else {
            req.client_ip
        };
        let result = self.inner.call(req, ctx);
        let (status, bytes) = match &result {
            Ok(response) => (response.status.as_u16(), response.body.len()),
            Err(error) => (error.status().as_u16(), 0),
        };
        self.log.record(
            &site,
            LogEntry {
                timestamp: ctx.arrival_secs,
                client: client.to_string(),
                method,
                url,
                status,
                bytes,
            },
        );
        result
    }
}

// ---------------------------------------------------------------------------
// Resource admission
// ---------------------------------------------------------------------------

/// Applies congestion-based admission control (paper Figure 6) before the
/// inner service runs, and charges the bytes it moved afterwards.
///
/// The controller's `CONTROL` procedure runs lazily off request arrival
/// times, once per configured period.
///
/// A scripted [`NaKikaNode`] runs its own
/// congestion controller internally; when stacking this layer in front of
/// one, either share the node's manager
/// ([`NaKikaNode::resource_manager`](crate::node::NaKikaNode::resource_manager))
/// or build the node
/// [`without_resource_controls`](crate::builder::NodeBuilder::without_resource_controls)
/// — two independent managers would each run their own control loop.
pub struct AdmissionLayer {
    resource: Arc<ResourceManager>,
    control_period_secs: u64,
}

impl AdmissionLayer {
    /// An admission layer over `resource` running control every 5 seconds.
    pub fn new(resource: Arc<ResourceManager>) -> AdmissionLayer {
        AdmissionLayer {
            resource,
            control_period_secs: 5,
        }
    }

    /// Sets the control period in seconds.
    pub fn with_control_period(mut self, secs: u64) -> AdmissionLayer {
        self.control_period_secs = secs.max(1);
        self
    }
}

impl Layer for AdmissionLayer {
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
        Arc::new(Admitted {
            inner,
            resource: self.resource.clone(),
            control_period_secs: self.control_period_secs,
            last_control: Mutex::new(0),
        })
    }

    /// Admission charges bytes from the *declared* body sizes, so streamed
    /// responses pass through unbuffered (an undeclared stream charges 0 —
    /// the trade this layer makes to stay off the body path).
    fn requires_full_body(&self) -> bool {
        false
    }
}

struct Admitted {
    inner: Arc<dyn HttpService>,
    resource: Arc<ResourceManager>,
    control_period_secs: u64,
    last_control: Mutex<u64>,
}

impl HttpService for Admitted {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        if self.resource.is_enabled() {
            let mut last = self.last_control.lock();
            if ctx.arrival_secs >= *last + self.control_period_secs {
                *last = ctx.arrival_secs;
                drop(last);
                self.resource.control();
            }
        }
        let site = req.site();
        match self.resource.admit(&site) {
            Admission::Accept => {}
            Admission::Throttle => return Err(NakikaError::Throttled { site }),
            Admission::Terminate => return Err(NakikaError::Terminated { site }),
        }
        let request_bytes = req.body.len();
        let response = self.inner.call(req, ctx)?;
        self.resource.record(
            &site,
            ResourceKind::BytesTransferred,
            (request_bytes + response.body.len()) as f64,
        );
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Per-client rate limiting
// ---------------------------------------------------------------------------

/// A token-bucket rate limiter keyed by client IP: each client refills
/// `rate_per_sec` tokens per second up to a `burst` ceiling, and every
/// request spends one.  An empty bucket rejects with
/// [`NakikaError::RateLimited`], which the transport seam maps to `429 Too
/// Many Requests` — distinct from the congestion controller's per-*site*
/// 503s ([`AdmissionLayer`]); this layer defends against a single hostile
/// *client* flooding the node.
///
/// Time comes from [`RequestCtx::arrival_secs`], so the layer is driven by
/// whatever [`Clock`](crate::service::Clock) the transport installed
/// (deterministic under a
/// [`ManualClock`](crate::service::ManualClock)).  The layer is cheap to
/// clone and clones share one bucket table, so callers can keep a handle
/// for the [`rejections`](RateLimitLayer::rejections) counter after
/// handing the layer to a
/// [`NodeBuilder`](crate::builder::NodeBuilder::layer).
#[derive(Clone)]
pub struct RateLimitLayer {
    rate_per_sec: u64,
    burst: u64,
    state: Arc<RateLimitState>,
}

#[derive(Default)]
struct RateLimitState {
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
    rejected: AtomicU64,
}

struct TokenBucket {
    tokens: u64,
    last_secs: u64,
}

impl RateLimitLayer {
    /// A limiter admitting `rate_per_sec` sustained requests per second
    /// per client, with bursts up to `burst` (both clamped to ≥ 1).
    pub fn new(rate_per_sec: u64, burst: u64) -> RateLimitLayer {
        RateLimitLayer {
            rate_per_sec: rate_per_sec.max(1),
            burst: burst.max(1),
            state: Arc::new(RateLimitState::default()),
        }
    }

    /// Requests rejected over the limiter's lifetime — the
    /// `rejected_rate_limited` counter of the survival instrumentation.
    pub fn rejections(&self) -> u64 {
        self.state.rejected.load(Ordering::Relaxed)
    }

    fn admit(&self, client: IpAddr, now_secs: u64) -> bool {
        let mut buckets = self.state.buckets.lock();
        let bucket = buckets.entry(client).or_insert(TokenBucket {
            tokens: self.burst,
            last_secs: now_secs,
        });
        // A coarse clock can step backwards across ctx snapshots; treat
        // that as zero elapsed time rather than underflowing.
        let elapsed = now_secs.saturating_sub(bucket.last_secs);
        bucket.tokens = bucket
            .tokens
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec))
            .min(self.burst);
        bucket.last_secs = bucket.last_secs.max(now_secs);
        if bucket.tokens == 0 {
            self.state.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        bucket.tokens -= 1;
        true
    }
}

impl Layer for RateLimitLayer {
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
        Arc::new(RateLimited {
            inner,
            limiter: self.clone(),
        })
    }

    /// The token check reads no bodies.
    fn requires_full_body(&self) -> bool {
        false
    }
}

struct RateLimited {
    inner: Arc<dyn HttpService>,
    limiter: RateLimitLayer,
}

impl HttpService for RateLimited {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        let client = if req.client_ip.is_unspecified() {
            ctx.client_ip
        } else {
            req.client_ip
        };
        if !self.limiter.admit(client, ctx.arrival_secs) {
            return Err(NakikaError::RateLimited { client });
        }
        self.inner.call(req, ctx)
    }
}

// ---------------------------------------------------------------------------
// Content integrity
// ---------------------------------------------------------------------------

/// Verifies signed responses (paper §6) on their way out: the body must
/// match the signed hash and the absolute expiration must still be in the
/// future at the exchange's arrival time.
pub struct IntegrityLayer {
    key: SigningKey,
    require_signature: bool,
}

impl IntegrityLayer {
    /// A verifying layer for content signed under `key`; unsigned responses
    /// pass through untouched.
    pub fn new(key: SigningKey) -> IntegrityLayer {
        IntegrityLayer {
            key,
            require_signature: false,
        }
    }

    /// Also rejects responses carrying no signature at all (for deployments
    /// where every origin signs).
    pub fn require_signature(mut self) -> IntegrityLayer {
        self.require_signature = true;
        self
    }
}

impl Layer for IntegrityLayer {
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
        Arc::new(Verified {
            inner,
            key: self.key.clone(),
            require_signature: self.require_signature,
        })
    }

    /// Verification hashes the whole body, so the pipeline buffers streamed
    /// responses beneath this layer before they are checked.
    fn requires_full_body(&self) -> bool {
        true
    }
}

struct Verified {
    inner: Arc<dyn HttpService>,
    key: SigningKey,
    require_signature: bool,
}

impl HttpService for Verified {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        let url = req.uri.to_string();
        let response = self.inner.call(req, ctx)?;
        let signed = response.headers.get("X-Signature").is_some();
        if signed {
            verify_response(&response, &self.key, ctx.arrival_secs).map_err(|e| {
                NakikaError::Integrity {
                    url: url.clone(),
                    reason: e.to_string(),
                }
            })?;
        } else if self.require_signature && response.status.is_success() {
            return Err(NakikaError::Integrity {
                url,
                reason: "response is unsigned".to_string(),
            });
        }
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Latency-aware redirection
// ---------------------------------------------------------------------------

/// Redirects clients to a closer edge node (the paper's DNS-style
/// redirection, expressed at the HTTP layer): when the overlay knows a node
/// nearer to the client than this one, answer `302 Found` pointing there
/// instead of serving locally.
///
/// Client geolocation and peer naming are deployment concerns, so both are
/// injected: `locate` maps a client address into the overlay's latency
/// space (return `None` to serve locally), and `peer_url` maps a node id to
/// the base URL clients should be sent to.
///
/// With [`route_to_owner`](Self::route_to_owner) the layer additionally
/// consults the live gossip membership and answers `307 Temporary
/// Redirect` pointing cacheable requests at the key's consistent-hash
/// owner when that owner is a live member — the client's next request hits
/// the node that holds (or will hold) the cached copy, skipping the relay
/// hop.  A suspect or faulty owner is never redirected to; the request is
/// served locally instead, with the peer relay as the fallback, so clients
/// keep working through churn.
pub struct RedirectLayer {
    overlay: Arc<Overlay>,
    self_id: NodeId,
    #[allow(clippy::type_complexity)]
    locate: Arc<dyn Fn(IpAddr) -> Option<Location> + Send + Sync>,
    #[allow(clippy::type_complexity)]
    peer_url: Arc<dyn Fn(NodeId) -> Option<String> + Send + Sync>,
    owner: Option<Arc<OwnerRouting>>,
}

/// The owner-aware half of [`RedirectLayer`]: the live roster deciding
/// whether the owner is worth sending the client to, and the node whose
/// `owner_redirects` counter records each one issued.
struct OwnerRouting {
    membership: Arc<Membership>,
    node: Arc<NaKikaNode>,
}

impl RedirectLayer {
    /// A redirection layer for the node `self_id` in `overlay`.
    pub fn new<L, P>(
        overlay: Arc<Overlay>,
        self_id: NodeId,
        locate: L,
        peer_url: P,
    ) -> RedirectLayer
    where
        L: Fn(IpAddr) -> Option<Location> + Send + Sync + 'static,
        P: Fn(NodeId) -> Option<String> + Send + Sync + 'static,
    {
        RedirectLayer {
            overlay,
            self_id,
            locate: Arc::new(locate),
            peer_url: Arc::new(peer_url),
            owner: None,
        }
    }

    /// A redirection layer that routes purely by key ownership — no client
    /// geolocation; see [`route_to_owner`](Self::route_to_owner).
    pub fn owner_aware(
        overlay: Arc<Overlay>,
        self_id: NodeId,
        membership: Arc<Membership>,
        node: Arc<NaKikaNode>,
    ) -> RedirectLayer {
        RedirectLayer::new(overlay, self_id, |_| None, |_| None).route_to_owner(membership, node)
    }

    /// Enables owner-aware redirection: cacheable client requests whose
    /// consistent-hash owner is another *live* member (per `membership`)
    /// are answered with a `307` to the owner's address instead of being
    /// relayed.  Internal traffic — peer fetches, replication pushes,
    /// gossip, anything under the node's internal path prefix — is never
    /// redirected; each issued redirect is counted in `node`'s cache stats.
    pub fn route_to_owner(
        mut self,
        membership: Arc<Membership>,
        node: Arc<NaKikaNode>,
    ) -> RedirectLayer {
        self.owner = Some(Arc::new(OwnerRouting { membership, node }));
        self
    }
}

impl Layer for RedirectLayer {
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
        Arc::new(Redirected {
            inner,
            overlay: self.overlay.clone(),
            self_id: self.self_id,
            locate: self.locate.clone(),
            peer_url: self.peer_url.clone(),
            owner: self.owner.clone(),
        })
    }
}

struct Redirected {
    inner: Arc<dyn HttpService>,
    overlay: Arc<Overlay>,
    self_id: NodeId,
    locate: Arc<dyn Fn(IpAddr) -> Option<Location> + Send + Sync>,
    peer_url: Arc<dyn Fn(NodeId) -> Option<String> + Send + Sync>,
    owner: Option<Arc<OwnerRouting>>,
}

impl Redirected {
    /// The owner-aware verdict for `req`: `Some(307)` when a different live
    /// member owns the key, `None` to serve locally (relay fallback).
    fn owner_redirect(&self, req: &Request) -> Option<Response> {
        let routing = self.owner.as_ref()?;
        // Only client-facing cacheable traffic is redirected: internal
        // exchanges (peer fetches, replication, gossip) must terminate
        // here, and non-cacheable methods gain nothing from the owner.
        if !req.method.is_cacheable()
            || req.uri.path.starts_with(peering::INTERNAL_PREFIX)
            || peering::has_internal_headers(req)
        {
            return None;
        }
        let owner = self.overlay.owner_of(&crate::node::cache_key(req))?;
        if owner.id == self.self_id {
            return None;
        }
        // "Alive" is the gossip membership's word, not the overlay's: a
        // planted or suspect owner is served locally via the relay path.
        let alive = routing
            .membership
            .members()
            .iter()
            .any(|m| m.state == PeerState::Alive && key_for(&m.name) == owner.id);
        if !alive {
            return None;
        }
        let base = owner.addr?;
        let base = base.trim_end_matches('/');
        let target = match &req.uri.query {
            Some(query) => format!("{base}{}?{query}", req.uri.path),
            None => format!("{base}{}", req.uri.path),
        };
        routing.node.record_owner_redirect();
        Some(Response::redirect_temporary(&target))
    }
}

impl HttpService for Redirected {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        let client = if req.client_ip.is_unspecified() {
            ctx.client_ip
        } else {
            req.client_ip
        };
        if let Some(location) = (self.locate)(client) {
            if let Some(&(nearest, _)) = self.overlay.nearest_nodes(&location, 1).first() {
                if nearest != self.self_id {
                    if let Some(base) = (self.peer_url)(nearest) {
                        let base = base.trim_end_matches('/');
                        let target = match &req.uri.query {
                            Some(query) => format!("{base}{}?{query}", req.uri.path),
                            None => format!("{base}{}", req.uri.path),
                        };
                        return Ok(Response::redirect(&target));
                    }
                }
            }
        }
        if let Some(redirect) = self.owner_redirect(&req) {
            return Ok(redirect);
        }
        self.inner.call(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceManagerConfig;
    use crate::service::service_fn;
    use nakika_http::StatusCode;
    use nakika_integrity::sign_response;
    use nakika_overlay::cluster::sites;
    use nakika_overlay::key_for;

    fn ok_service() -> Arc<dyn HttpService> {
        service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "payload")))
    }

    #[test]
    fn access_log_records_successes_and_rejections() {
        let log = Arc::new(AccessLog::new());
        let base = service_fn(|req: Request, _ctx: &RequestCtx| {
            if req.uri.path.contains("fail") {
                Err(NakikaError::Upstream {
                    url: req.uri.to_string(),
                    reason: "unreachable".into(),
                })
            } else {
                Ok(Response::ok("text/plain", "ok"))
            }
        });
        let stack = AccessLogLayer::new(log.clone()).wrap(base);
        let ctx = RequestCtx::at(42).with_client_ip("10.1.2.3".parse().unwrap());
        stack
            .call(Request::get("http://site.example/good"), &ctx)
            .unwrap();
        stack
            .call(Request::get("http://site.example/fail"), &ctx)
            .unwrap_err();
        assert_eq!(log.pending("site.example"), 2);
        log.configure_site("site.example", Some("http://site.example/logs"));
        let batches = log.flush();
        assert!(batches[0].1.contains(" 200 "));
        assert!(batches[0].1.contains(" 502 "));
    }

    #[test]
    fn admission_layer_rejects_terminated_sites_with_typed_errors() {
        let mut config = ResourceManagerConfig::default();
        config.capacity.insert(ResourceKind::Cpu, 1.0);
        let resource = Arc::new(ResourceManager::new(config));
        // Congest the site across two control rounds so the controller
        // terminates its pipelines deterministically.
        resource.record("hog.example", ResourceKind::Cpu, 1_000.0);
        resource.control();
        resource.record("hog.example", ResourceKind::Cpu, 1_000.0);
        resource.control();
        let stack = AdmissionLayer::new(resource).wrap(ok_service());
        let result = stack.call(Request::get("http://hog.example/x"), &RequestCtx::at(0));
        match result {
            Err(NakikaError::Throttled { site } | NakikaError::Terminated { site }) => {
                assert_eq!(site, "hog.example");
            }
            other => panic!("expected a typed admission rejection, got {other:?}"),
        }
    }

    #[test]
    fn rate_limit_layer_spends_refills_and_isolates_clients() {
        let limiter = RateLimitLayer::new(2, 3);
        let stack = limiter.clone().wrap(ok_service());
        let hog: IpAddr = "10.0.0.1".parse().unwrap();
        let polite: IpAddr = "10.0.0.2".parse().unwrap();

        // The burst allows 3 immediate requests; the 4th in the same
        // second is rejected with the typed 429 mapping.
        let ctx = RequestCtx::at(100).with_client_ip(hog);
        for _ in 0..3 {
            assert!(stack.call(Request::get("http://s.example/a"), &ctx).is_ok());
        }
        match stack.call(Request::get("http://s.example/a"), &ctx) {
            Err(error @ NakikaError::RateLimited { client }) => {
                assert_eq!(client, hog);
                assert_eq!(error.status(), StatusCode::TOO_MANY_REQUESTS);
                assert_eq!(error.to_response().status.as_u16(), 429);
            }
            other => panic!("expected a rate-limit rejection, got {other:?}"),
        }
        assert_eq!(limiter.rejections(), 1);

        // A different client is untouched by the hog's empty bucket.
        let ctx = RequestCtx::at(100).with_client_ip(polite);
        assert!(stack.call(Request::get("http://s.example/b"), &ctx).is_ok());

        // Two seconds later the hog has earned 2 * rate tokens back.
        let ctx = RequestCtx::at(102).with_client_ip(hog);
        for _ in 0..4 {
            let _ = stack.call(Request::get("http://s.example/a"), &ctx);
        }
        assert_eq!(
            limiter.rejections(),
            2,
            "4 tokens earned back? only 2/sec * 2s should refill"
        );
    }

    #[test]
    fn integrity_layer_accepts_signed_and_rejects_tampered_content() {
        let key = SigningKey::new(b"origin-key");
        let signing_key = key.clone();
        let good = service_fn(move |_req, _ctx| {
            let mut response = Response::ok("text/html", "<p>results</p>");
            sign_response(&mut response, &signing_key, 1_000, 3_600);
            Ok(response)
        });
        let stack = IntegrityLayer::new(key.clone()).wrap(good);
        let ctx = RequestCtx::at(2_000);
        assert!(stack
            .call(Request::get("http://med.example/study"), &ctx)
            .is_ok());

        let tampering_key = key.clone();
        let tampering = service_fn(move |_req, _ctx| {
            let mut response = Response::ok("text/html", "<p>results</p>");
            sign_response(&mut response, &tampering_key, 1_000, 3_600);
            response.set_body("<p>falsified</p>");
            Ok(response)
        });
        let stack = IntegrityLayer::new(key).wrap(tampering);
        match stack.call(Request::get("http://med.example/study"), &ctx) {
            Err(NakikaError::Integrity { reason, .. }) => {
                assert!(reason.contains("hash"), "reason: {reason}")
            }
            other => panic!("expected an integrity error, got {other:?}"),
        }
    }

    #[test]
    fn redirect_layer_sends_distant_clients_to_the_nearer_node() {
        let overlay = Arc::new(Overlay::with_defaults());
        let us = key_for("edge-us");
        let asia = key_for("edge-asia");
        overlay.join(us, sites::US_EAST);
        overlay.join(asia, sites::ASIA);
        let layer = RedirectLayer::new(
            overlay,
            us,
            |ip: IpAddr| {
                // Toy geolocation: 203.* clients are in Asia, the rest local.
                if ip.to_string().starts_with("203.") {
                    Some(sites::ASIA)
                } else {
                    Some(sites::US_EAST)
                }
            },
            move |id| (id == asia).then(|| "http://edge-asia.nakika.net".to_string()),
        );
        let stack = layer.wrap(ok_service());

        let far = RequestCtx::at(0).with_client_ip("203.0.113.5".parse().unwrap());
        let resp = stack
            .call(Request::get("http://site.example/page?lang=jp&hq=1"), &far)
            .unwrap();
        assert_eq!(resp.status, StatusCode::FOUND);
        assert_eq!(
            resp.headers.get("Location"),
            Some("http://edge-asia.nakika.net/page?lang=jp&hq=1"),
            "the query string survives the redirect"
        );

        let near = RequestCtx::at(0).with_client_ip("10.0.0.1".parse().unwrap());
        let resp = stack
            .call(Request::get("http://site.example/page"), &near)
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn owner_aware_layer_redirects_to_live_owners_only() {
        let overlay = Arc::new(Overlay::with_defaults());
        let me = key_for("edge-a");
        let peer = key_for("edge-b");
        overlay.join(me, sites::US_EAST);
        overlay.join_with_addr(peer, sites::ASIA, "http://edge-b.example");
        let handle = crate::builder::NodeBuilder::proxy_with_dht("edge-a").build();
        let node = Arc::clone(handle.node());
        let membership = Arc::new(Membership::with_manual_clock(
            "edge-a",
            nakika_overlay::MembershipConfig::default(),
        ));
        membership.set_self_addr("http://edge-a.example");
        membership.introduce("edge-b", "http://edge-b.example");
        let stack = RedirectLayer::owner_aware(
            Arc::clone(&overlay),
            me,
            Arc::clone(&membership),
            Arc::clone(&node),
        )
        .wrap(ok_service());
        let ctx = RequestCtx::at(0);

        // Consistent hashing spreads keys across both members; pick one
        // owned by each side.
        let owned_by = |id: NodeId| {
            (0..)
                .map(|i| format!("http://site.example/page-{i}.html"))
                .find(|url| {
                    let key = crate::node::cache_key(&Request::get(url));
                    overlay.owner_of(&key).is_some_and(|m| m.id == id)
                })
                .expect("some key hashes to the node")
        };
        let peers_url = owned_by(peer);
        let own_url = owned_by(me);

        // The peer's key is answered with a 307 to the owner, and counted.
        let resp = stack.call(Request::get(&peers_url), &ctx).unwrap();
        assert_eq!(resp.status, StatusCode::TEMPORARY_REDIRECT);
        let expected = peers_url.replace("http://site.example", "http://edge-b.example");
        assert_eq!(resp.headers.get("Location"), Some(expected.as_str()));
        assert_eq!(node.stats().owner_redirects, 1);

        // Keys this node owns, internal peer exchanges, and internal paths
        // are all served locally, never redirected.
        for req in [
            Request::get(&own_url),
            Request::get(&peers_url).with_header(peering::PEER_HOP_HEADER, "3"),
            Request::get("http://site.example/__nakika/stats"),
        ] {
            let resp = stack.call(req, &ctx).unwrap();
            assert_eq!(resp.body.to_text(), "payload");
        }
        assert_eq!(node.stats().owner_redirects, 1);

        // A suspect owner is no longer redirected to — the local relay
        // fallback takes over until gossip refutes or confirms the failure.
        membership.on_probe_failed("edge-b");
        let resp = stack.call(Request::get(&peers_url), &ctx).unwrap();
        assert_eq!(resp.body.to_text(), "payload");
        assert_eq!(node.stats().owner_redirects, 1);
    }
}
