//! Default administrative-control scripts and the extension scripts the paper
//! evaluates (§3.2, §5.4), shipped as embedded sources.
//!
//! In a deployment these live at well-known URLs (`nakika.net/clientwall.js`,
//! `nakika.net/serverwall.js`) and on the sites that publish them; they are
//! fetched and cached through ordinary HTTP, which is how security-policy
//! updates propagate.  The constants here are the defaults a node falls back
//! to when those URLs are unreachable, and the building blocks the examples
//! and experiments serve from their simulated origins.

/// Default client-side administrative control (admission control): accepts
/// everything but rejects requests for obviously abusive URL shapes.  Real
/// deployments extend this via the same predicate mechanism.
pub const DEFAULT_CLIENT_WALL: &str = r#"
p = new Policy();
p.onRequest = function() {
    // Reject requests whose URL smuggles credentials or grows absurdly long
    // (two abuse patterns reported by CoDeeN's operators).
    if (Request.url.indexOf('@') != -1 || Request.url.length > 2048) {
        Request.terminate(403);
    }
};
p.register();
"#;

/// Default server-side administrative control (emission control): forbids
/// hosted scripts from reaching private address space through Na Kika.
pub const DEFAULT_SERVER_WALL: &str = r#"
p = new Policy();
p.onRequest = function() {
    if (Request.host == 'localhost' ||
        Request.host.indexOf('127.0.0.1') == 0 ||
        Request.host.indexOf('10.') == 0 ||
        Request.host.indexOf('192.168.') == 0) {
        Request.terminate(403);
    }
};
p.register();
"#;

/// A wall that matches every request with empty handlers — the `Admin`
/// micro-benchmark configuration (Table 1: "evaluating one matching predicate
/// and executing empty event handlers").
pub const EMPTY_WALL: &str = r#"
p = new Policy();
p.onRequest = function() { };
p.onResponse = function() { };
p.register();
"#;

/// The paper's Figure 5: deny access to the BMJ and NEJM digital libraries
/// from clients outside the hosting organisation.
pub const DIGITAL_LIBRARY_POLICY: &str = r#"
bmj = "bmj.bmjjournals.com/cgi/reprint";
nejm = "content.nejm.org/cgi/reprint";
p = new Policy();
p.url = [ bmj, nejm ];
p.onRequest = function() {
    if (! System.isLocal(Request.clientIP)) {
        Request.terminate(401);
    }
}
p.register();
"#;

/// The paper's Figure 2 generalised into the §5.4 cell-phone extension:
/// transcode images to fit a small screen, caching the transformed content,
/// and selected by the device's User-Agent header.
pub const IMAGE_TRANSCODER: &str = r#"
p = new Policy();
p.headers = { "User-Agent": "Nokia" };
p.onResponse = function() {
    if (Response.contentType.indexOf('image/') != 0) { return; }
    var cacheKey = 'transcoded:' + Request.url;
    var cached = Cache.get(cacheKey);
    if (cached != null) {
        Response.setHeader("Content-Type", "image/jpeg");
        Response.write(cached);
        return;
    }
    var buff = null, body = new ByteArray();
    while (buff = Response.read()) {
        body.append(buff);
    }
    var type = ImageTransformer.type(Response.contentType);
    var dim = ImageTransformer.dimensions(body, type);
    if (dim.x > 176 || dim.y > 208) {
        var img;
        if (dim.x/176 > dim.y/208) {
            img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y/dim.x*208);
        } else {
            img = ImageTransformer.transform(body, type, "jpeg", dim.x/dim.y*176, 208);
        }
        Response.setHeader("Content-Type", "image/jpeg");
        Response.setHeader("Content-Length", img.length);
        Response.write(img);
        Cache.put(cacheKey, img, 300);
    }
};
p.register();
"#;

/// The §5.4 content-blocking extension: a static stage whose policies are
/// generated from a blacklist.  [`blacklist_stage`] produces the generated
/// second stage.
pub const BLACKLIST_LOADER: &str = r#"
p = new Policy();
p.nextStages = ["http://nakika.net/blocklist-generated.js"];
p.register();
"#;

/// Generates the blacklist-enforcement stage from a list of URL prefixes —
/// the dynamic code generation step of the paper's third extension.
pub fn blacklist_stage(blocked: &[&str]) -> String {
    let mut script = String::new();
    for url in blocked {
        let escaped = url.replace('\\', "\\\\").replace('"', "\\\"");
        script.push_str(&format!(
            "p = new Policy();\np.url = [\"{escaped}\"];\np.onRequest = function() {{ Request.terminate(403); }};\np.register();\n"
        ));
    }
    script
}

/// The electronic-annotations extension (§5.4): interposes on a site, injects
/// annotation markup into HTML responses, and rewrites embedded URLs to keep
/// itself in the loop.
pub const ANNOTATIONS: &str = r#"
p = new Policy();
p.onResponse = function() {
    if (Response.contentType != 'text/html') { return; }
    var buff = null, body = new ByteArray();
    while (buff = Response.read()) { body.append(buff); }
    var html = body.toString();
    var note = HardState.get('note:' + Request.path);
    var widget = '<div class="nakika-annotations">' +
        (note == null ? 'No annotations yet.' : Xml.escape(note)) +
        '</div>';
    html = html.replace('</body>', widget + '</body>');
    Response.setHeader('Content-Length', html.length);
    Response.write(html);
};
p.register();

q = new Policy();
q.method = ["POST"];
q.onRequest = function() {
    var text = Request.query('text');
    if (text != null) {
        HardState.put('note:' + Request.path, text);
    }
    Request.respond('text/plain', 'annotation saved');
};
q.register();
"#;

/// Generates a predicate micro-benchmark stage with `n` policies, none of
/// which match the benchmark URL (the `Pred-n` configurations of Table 1).
pub fn pred_n_stage(n: usize) -> String {
    let mut script = String::new();
    for i in 0..n {
        script.push_str(&format!(
            "p = new Policy();\np.url = [\"unmatched-site-{i}.example.org\"];\np.onRequest = function() {{ }};\np.onResponse = function() {{ }};\np.register();\n"
        ));
    }
    script
}

/// Generates the `Match-1` micro-benchmark stage: one policy matching `site`
/// with empty handlers.
pub fn match_1_stage(site: &str) -> String {
    format!(
        "p = new Policy();\np.url = [\"{site}\"];\np.onRequest = function() {{ }};\np.onResponse = function() {{ }};\np.register();\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompiledStage;
    use crate::vocab::VocabHooks;

    fn compiles(source: &str) -> usize {
        CompiledStage::compile("http://test/script.js", source, &VocabHooks::default())
            .expect("script compiles")
            .policies
            .len()
    }

    #[test]
    fn all_embedded_scripts_compile() {
        assert_eq!(compiles(DEFAULT_CLIENT_WALL), 1);
        assert_eq!(compiles(DEFAULT_SERVER_WALL), 1);
        assert_eq!(compiles(EMPTY_WALL), 1);
        assert_eq!(compiles(DIGITAL_LIBRARY_POLICY), 1);
        assert_eq!(compiles(IMAGE_TRANSCODER), 1);
        assert_eq!(compiles(BLACKLIST_LOADER), 1);
        assert_eq!(compiles(ANNOTATIONS), 2);
    }

    #[test]
    fn generated_stages_compile_with_the_requested_policy_counts() {
        assert_eq!(compiles(&pred_n_stage(0)), 0);
        assert_eq!(compiles(&pred_n_stage(10)), 10);
        assert_eq!(compiles(&pred_n_stage(100)), 100);
        assert_eq!(compiles(&match_1_stage("www.google.com")), 1);
        assert_eq!(
            compiles(&blacklist_stage(&[
                "bad.example.com",
                "worse.example.net/illegal"
            ])),
            2
        );
    }

    #[test]
    fn blacklist_stage_blocks_listed_urls_only() {
        let stage = CompiledStage::compile(
            "http://nakika.net/blocklist-generated.js",
            &blacklist_stage(&["bad.example.com"]),
            &VocabHooks::default(),
        )
        .unwrap();
        assert!(stage
            .find_closest_match(&nakika_http::Request::get("http://bad.example.com/warez"))
            .is_some());
        assert!(stage
            .find_closest_match(&nakika_http::Request::get("http://good.example.com/"))
            .is_none());
    }
}
