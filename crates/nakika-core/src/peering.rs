//! The peer-fetch protocol: how one Na Kika node asks another for a cached
//! copy over real TCP, without ever looping a request around the overlay.
//!
//! When a cache miss routes to the key's consistent-hash owner (see
//! `docs/CLUSTER.md`), the forwarding node marks the outgoing request with
//! two internal headers:
//!
//! * [`PEER_HOP_HEADER`] (`X-Nakika-Hops`) — how many node-to-node forwards
//!   the request has already taken.  A node never peer-routes a request that
//!   has used up its [`MAX_PEER_HOPS`] budget; it goes to the origin instead.
//! * [`PEER_VIA_HEADER`] (`X-Nakika-Via`) — the comma-separated names of the
//!   nodes the request has passed through.  A node that finds itself on the
//!   list answers from its own cache or the origin, never a peer.
//!
//! Either guard alone terminates a routing loop (two nodes with divergent
//! membership views each believing the other owns a key); both are cheap, so
//! both are enforced.  The headers are stripped before a request leaves the
//! cooperative network for an origin server.
//!
//! Replication pushes (the owner warming a hot key's successors) carry
//! [`REPLICATE_HEADER`] so the receiving node can tell a push from organic
//! client traffic and skip hot-entry accounting on it.

use nakika_http::Request;

/// Header counting node-to-node forwards a request has taken.
pub const PEER_HOP_HEADER: &str = "X-Nakika-Hops";

/// Header listing the nodes a request has passed through, comma-separated.
pub const PEER_VIA_HEADER: &str = "X-Nakika-Via";

/// Marks a request issued by the replication worker to pre-warm a successor.
pub const REPLICATE_HEADER: &str = "X-Nakika-Replicate";

/// Prefix of every internal (non-client) path a node serves; the owner-aware
/// redirect layer and other client-facing machinery must leave these alone.
pub const INTERNAL_PREFIX: &str = "/__nakika/";

/// Path of the gossip membership exchange endpoint.  A gossip probe is a
/// plain GET to this path carrying the prober's roster digest in
/// [`GOSSIP_HEADER`]; the response body is the responder's digest.  Riding
/// the existing HTTP plane means no extra listener, and GET (idempotent)
/// keeps the exchange on the pooled keep-alive connections.
pub const GOSSIP_PATH: &str = "/__nakika/gossip";

/// Request header carrying the prober's roster digest on a gossip exchange.
pub const GOSSIP_HEADER: &str = "X-Nakika-Gossip";

/// Header asking a relay to probe a third node on the requester's behalf
/// (SWIM's ping-req).  The value is the target's base URL; the relay
/// answers 200 with its own digest if the target responded, 502 otherwise.
/// Relayed exchanges never carry this header themselves, so indirection is
/// a single level deep by construction.
pub const GOSSIP_PROBE_HEADER: &str = "X-Nakika-Gossip-Probe";

/// Hop budget: how many times a request may be forwarded between peers.
/// One hop reaches the key's owner; the second tolerates a briefly divergent
/// membership view during joins and leaves.
pub const MAX_PEER_HOPS: u64 = 2;

/// Number of node-to-node forwards `request` has already taken.
pub fn hops(request: &Request) -> u64 {
    request
        .headers
        .get(PEER_HOP_HEADER)
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// True if `node` already forwarded this request (it appears in the Via
/// list), in which case routing it back would loop.
pub fn via_contains(request: &Request, node: &str) -> bool {
    request
        .headers
        .get(PEER_VIA_HEADER)
        .map(|via| via.split(',').any(|entry| entry.trim() == node))
        .unwrap_or(false)
}

/// True if the request may still be forwarded to a peer by `node`.
pub fn may_forward(request: &Request, node: &str) -> bool {
    hops(request) < MAX_PEER_HOPS && !via_contains(request, node)
}

/// Stamps the loop-prevention headers onto a request about to be forwarded
/// by `node`: increments the hop count and appends `node` to the Via list.
pub fn mark_forwarded(request: &mut Request, node: &str) {
    let next = hops(request) + 1;
    request.headers.set(PEER_HOP_HEADER, next.to_string());
    let via = match request.headers.get(PEER_VIA_HEADER) {
        Some(existing) if !existing.is_empty() => format!("{existing}, {node}"),
        _ => node.to_string(),
    };
    request.headers.set(PEER_VIA_HEADER, via);
}

/// True if `request` is a replication push rather than organic traffic.
pub fn is_replication_push(request: &Request) -> bool {
    request.headers.contains(REPLICATE_HEADER)
}

/// True if the request carries any of the cooperative network's internal
/// headers (cheap pre-check before cloning a request to strip them).
pub fn has_internal_headers(request: &Request) -> bool {
    request.headers.contains(PEER_HOP_HEADER)
        || request.headers.contains(PEER_VIA_HEADER)
        || request.headers.contains(REPLICATE_HEADER)
        || request.headers.contains(GOSSIP_HEADER)
        || request.headers.contains(GOSSIP_PROBE_HEADER)
}

/// Removes the cooperative network's internal headers; called before a
/// request leaves for an origin server.
pub fn strip_internal_headers(request: &mut Request) {
    request.headers.remove(PEER_HOP_HEADER);
    request.headers.remove(PEER_VIA_HEADER);
    request.headers.remove(REPLICATE_HEADER);
    request.headers.remove(GOSSIP_HEADER);
    request.headers.remove(GOSSIP_PROBE_HEADER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_budget_counts_forwards() {
        let mut req = Request::get("http://site.example/x");
        assert_eq!(hops(&req), 0);
        assert!(may_forward(&req, "edge-a"));
        mark_forwarded(&mut req, "edge-a");
        assert_eq!(hops(&req), 1);
        assert!(may_forward(&req, "edge-b"));
        mark_forwarded(&mut req, "edge-b");
        assert_eq!(hops(&req), 2);
        assert!(!may_forward(&req, "edge-c"), "hop budget exhausted");
    }

    #[test]
    fn via_list_blocks_revisits() {
        let mut req = Request::get("http://site.example/x");
        mark_forwarded(&mut req, "edge-a");
        assert!(via_contains(&req, "edge-a"));
        assert!(!via_contains(&req, "edge-b"));
        assert!(!may_forward(&req, "edge-a"), "revisit blocked by Via");
        // Garbage hop counts are treated as zero, not as a panic.
        req.headers.set(PEER_HOP_HEADER, "not-a-number");
        assert_eq!(hops(&req), 0);
    }

    #[test]
    fn internal_headers_never_reach_the_origin() {
        let mut req = Request::get("http://site.example/x");
        mark_forwarded(&mut req, "edge-a");
        req.headers.set(REPLICATE_HEADER, "1");
        assert!(is_replication_push(&req));
        strip_internal_headers(&mut req);
        assert!(req.headers.get(PEER_HOP_HEADER).is_none());
        assert!(req.headers.get(PEER_VIA_HEADER).is_none());
        assert!(!is_replication_push(&req));
    }
}
