//! Congestion-based resource management (paper §3.2, Figure 6).
//!
//! Na Kika rejects a-priori quotas: hosted code may consume as many resources
//! as it wants **as long as it does not cause congestion**.  A resource
//! manager tracks CPU, memory and bandwidth (renewable) plus running time and
//! total bytes transferred (nonrenewable) for each site's pipelines as well
//! as for the whole node.  When a resource is overutilized it throttles
//! requests proportionally to each site's contribution to the congestion and,
//! if the congestion persists into the next control round, terminates the
//! pipelines of the largest contributor.  A site's contribution is a weighted
//! average of past and present consumption and is exposed to scripts so they
//! can adapt and recover from past penalisation.

use nakika_script::ResourceMeter;
use parking_lot::Mutex;
use std::collections::HashMap;

/// The resources the manager tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU consumption (interpreter fuel steps).
    Cpu,
    /// Memory consumption (bytes allocated on script heaps).
    Memory,
    /// Network bandwidth (bytes moved on behalf of the site this period).
    Bandwidth,
    /// Wall-clock running time of the site's pipelines (milliseconds).
    RunningTime,
    /// Total bytes transferred over the site's lifetime.
    BytesTransferred,
}

impl ResourceKind {
    /// All tracked resources.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Bandwidth,
        ResourceKind::RunningTime,
        ResourceKind::BytesTransferred,
    ];

    /// Renewable resources are replenished every control period; only their
    /// consumption *under overutilization* counts against a site.
    pub fn is_renewable(&self) -> bool {
        matches!(
            self,
            ResourceKind::Cpu | ResourceKind::Memory | ResourceKind::Bandwidth
        )
    }

    /// Short name used by `System.congestion(name)`.
    pub fn name(&self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Bandwidth => "bandwidth",
            ResourceKind::RunningTime => "time",
            ResourceKind::BytesTransferred => "bytes",
        }
    }

    /// Parses a resource name.
    pub fn parse(name: &str) -> Option<ResourceKind> {
        ResourceKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// Admission decision for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Process the request normally.
    Accept,
    /// Reject with "server busy" (503) because the site is being throttled.
    Throttle,
    /// Reject because the site's pipelines have been terminated this round.
    Terminate,
}

/// Configuration of the resource manager.
#[derive(Debug, Clone)]
pub struct ResourceManagerConfig {
    /// Master switch; when false every request is accepted and nothing is
    /// tracked (the "without resource controls" experimental arm).
    pub enabled: bool,
    /// Node capacity per control period for each resource.
    pub capacity: HashMap<ResourceKind, f64>,
    /// Weight of present consumption in the exponentially weighted average
    /// (the paper's "weighted average of past and present consumption").
    pub ewma_alpha: f64,
    /// Upper bound on the per-site rejection probability while throttling.
    pub max_reject_fraction: f64,
}

impl Default for ResourceManagerConfig {
    fn default() -> Self {
        let mut capacity = HashMap::new();
        capacity.insert(ResourceKind::Cpu, 50_000_000.0);
        capacity.insert(ResourceKind::Memory, 512.0 * 1024.0 * 1024.0);
        capacity.insert(ResourceKind::Bandwidth, 100.0 * 1024.0 * 1024.0);
        capacity.insert(ResourceKind::RunningTime, 60_000.0);
        capacity.insert(ResourceKind::BytesTransferred, 1024.0 * 1024.0 * 1024.0);
        ResourceManagerConfig {
            enabled: true,
            capacity,
            ewma_alpha: 0.5,
            max_reject_fraction: 0.95,
        }
    }
}

#[derive(Default)]
struct SiteState {
    /// Consumption in the current control period, per resource.
    current: HashMap<ResourceKind, f64>,
    /// Weighted average of (charged) past and present consumption.
    average: HashMap<ResourceKind, f64>,
    /// Rejection probability while this site is throttled.
    reject_fraction: f64,
    /// Accumulator implementing deterministic proportional rejection.
    reject_accumulator: f64,
    /// True once the site's pipelines have been terminated this round.
    terminated: bool,
    /// Meters of the site's currently executing pipelines, so termination
    /// stops even a handler stuck inside native vocabulary code.
    meters: Vec<ResourceMeter>,
}

/// Per-site usage snapshot exposed for statistics and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteUsage {
    /// Weighted-average consumption per resource.
    pub average: HashMap<ResourceKind, f64>,
    /// Current rejection probability.
    pub reject_fraction: f64,
    /// True if the site was terminated in the current round.
    pub terminated: bool,
}

/// Statistics the evaluation reports (paper §5.1: "<0.55% rejected due to
/// throttling, <0.08% dropped due to termination").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected by throttling.
    pub throttled: u64,
    /// Requests dropped because the site was terminated.
    pub terminated: u64,
    /// Pipelines killed by the controller.
    pub kills: u64,
}

/// The congestion controller.
pub struct ResourceManager {
    config: ResourceManagerConfig,
    sites: Mutex<HashMap<String, SiteState>>,
    /// Node-wide consumption in the current period.
    node_current: Mutex<HashMap<ResourceKind, f64>>,
    /// Resources that were congested in the previous control round (if still
    /// congested now, the top offender is terminated).
    previously_congested: Mutex<Vec<ResourceKind>>,
    stats: Mutex<ResourceStats>,
}

impl ResourceManager {
    /// Creates a manager with the given configuration.
    pub fn new(config: ResourceManagerConfig) -> ResourceManager {
        ResourceManager {
            config,
            sites: Mutex::new(HashMap::new()),
            node_current: Mutex::new(HashMap::new()),
            previously_congested: Mutex::new(Vec::new()),
            stats: Mutex::new(ResourceStats::default()),
        }
    }

    /// Creates a manager with default capacities.
    pub fn with_defaults() -> ResourceManager {
        ResourceManager::new(ResourceManagerConfig::default())
    }

    /// A disabled manager (the "without resource controls" arm).
    pub fn disabled() -> ResourceManager {
        ResourceManager::new(ResourceManagerConfig {
            enabled: false,
            ..ResourceManagerConfig::default()
        })
    }

    /// True when congestion control is active.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Admission control for a request to `site`, applied *before* resources
    /// are expended (the paper's "drop requests early" principle).
    pub fn admit(&self, site: &str) -> Admission {
        if !self.config.enabled {
            return Admission::Accept;
        }
        let mut sites = self.sites.lock();
        let state = sites.entry(site.to_string()).or_default();
        let decision = if state.terminated {
            Admission::Terminate
        } else if state.reject_fraction > 0.0 {
            state.reject_accumulator += state.reject_fraction;
            if state.reject_accumulator >= 1.0 {
                state.reject_accumulator -= 1.0;
                Admission::Throttle
            } else {
                Admission::Accept
            }
        } else {
            Admission::Accept
        };
        drop(sites);
        let mut stats = self.stats.lock();
        match decision {
            Admission::Accept => stats.accepted += 1,
            Admission::Throttle => stats.throttled += 1,
            Admission::Terminate => stats.terminated += 1,
        }
        decision
    }

    /// Records consumption of `amount` of `kind` by `site`.
    pub fn record(&self, site: &str, kind: ResourceKind, amount: f64) {
        if !self.config.enabled || amount <= 0.0 {
            return;
        }
        let mut sites = self.sites.lock();
        *sites
            .entry(site.to_string())
            .or_default()
            .current
            .entry(kind)
            .or_insert(0.0) += amount;
        drop(sites);
        *self.node_current.lock().entry(kind).or_insert(0.0) += amount;
    }

    /// Registers the meter of a pipeline that has started executing for
    /// `site`, so a later termination stops it immediately.
    pub fn register_meter(&self, site: &str, meter: ResourceMeter) {
        if !self.config.enabled {
            return;
        }
        self.sites
            .lock()
            .entry(site.to_string())
            .or_default()
            .meters
            .push(meter);
    }

    /// The congestion level of a resource: node consumption this period
    /// divided by capacity (values above 1.0 mean overutilization).  Exposed
    /// to scripts as `System.congestion(name)`.
    pub fn congestion_level(&self, kind: ResourceKind) -> f64 {
        let used = *self.node_current.lock().get(&kind).unwrap_or(&0.0);
        let capacity = *self.config.capacity.get(&kind).unwrap_or(&f64::INFINITY);
        if capacity <= 0.0 || capacity.is_infinite() {
            0.0
        } else {
            used / capacity
        }
    }

    /// One execution of the paper's CONTROL procedure across all tracked
    /// resources; the node calls this periodically (once per control period).
    ///
    /// For each congested resource: charge the period's consumption to every
    /// active site's weighted average and set throttling proportional to the
    /// site's contribution.  If the same resource was congested in the
    /// previous round as well (throttling did not relieve it), terminate the
    /// largest contributor.  Non-congested renewable resources are simply
    /// reset; nonrenewable resources are always charged.
    pub fn control(&self) {
        if !self.config.enabled {
            return;
        }
        let mut sites = self.sites.lock();
        let mut node_current = self.node_current.lock();
        let mut previously = self.previously_congested.lock();
        let mut kills = 0u64;

        // Lift last round's throttling and termination; persistent offenders
        // are re-penalised below from fresh measurements.
        for state in sites.values_mut() {
            state.reject_fraction = 0.0;
            state.terminated = false;
        }

        let mut congested_now = Vec::new();
        for kind in ResourceKind::ALL {
            let capacity = *self.config.capacity.get(&kind).unwrap_or(&f64::INFINITY);
            let used = *node_current.get(&kind).unwrap_or(&0.0);
            let congested = capacity.is_finite() && capacity > 0.0 && used > capacity;

            if congested || !kind.is_renewable() {
                // UPDATE(site.usage, resource): fold this period into the
                // weighted average.
                for state in sites.values_mut() {
                    let current = *state.current.get(&kind).unwrap_or(&0.0);
                    let avg = state.average.entry(kind).or_insert(0.0);
                    *avg = (1.0 - self.config.ewma_alpha) * *avg + self.config.ewma_alpha * current;
                }
            }

            if congested {
                congested_now.push(kind);
                let load_factor = used / capacity;
                let shed = 1.0 - 1.0 / load_factor;
                let total: f64 = sites
                    .values()
                    .map(|s| *s.current.get(&kind).unwrap_or(&0.0))
                    .sum();
                let active = sites
                    .values()
                    .filter(|s| *s.current.get(&kind).unwrap_or(&0.0) > 0.0)
                    .count()
                    .max(1) as f64;
                // THROTTLE proportionally to the site's contribution.
                for state in sites.values_mut() {
                    let share = if total > 0.0 {
                        *state.current.get(&kind).unwrap_or(&0.0) / total
                    } else {
                        0.0
                    };
                    let fraction = (shed * share * active).min(self.config.max_reject_fraction);
                    state.reject_fraction = state.reject_fraction.max(fraction);
                }

                // If throttling last round did not relieve this resource,
                // TERMINATE the top offender (dequeue of the priority queue).
                if previously.contains(&kind) {
                    if let Some((_, state)) = sites
                        .iter_mut()
                        .filter(|(_, s)| *s.current.get(&kind).unwrap_or(&0.0) > 0.0)
                        .max_by(|a, b| {
                            let ka = *a.1.average.get(&kind).unwrap_or(&0.0);
                            let kb = *b.1.average.get(&kind).unwrap_or(&0.0);
                            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                        })
                    {
                        state.terminated = true;
                        state.reject_fraction = 1.0;
                        for meter in state.meters.drain(..) {
                            meter.kill();
                        }
                        kills += 1;
                    }
                }
            }
        }

        // Start the next period: renewable consumption resets; nonrenewable
        // totals keep accumulating in the averages (already folded above).
        for state in sites.values_mut() {
            state.current.clear();
            state.meters.retain(|m| !m.is_killed());
        }
        node_current.clear();
        *previously = congested_now;
        drop(previously);
        drop(node_current);
        drop(sites);
        self.stats.lock().kills += kills;
    }

    /// Snapshot of a site's usage (for scripts, statistics and tests).
    pub fn site_usage(&self, site: &str) -> SiteUsage {
        let sites = self.sites.lock();
        match sites.get(site) {
            Some(state) => SiteUsage {
                average: state.average.clone(),
                reject_fraction: state.reject_fraction,
                terminated: state.terminated,
            },
            None => SiteUsage::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ResourceStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ResourceManagerConfig {
        let mut capacity = HashMap::new();
        capacity.insert(ResourceKind::Cpu, 1_000.0);
        capacity.insert(ResourceKind::Memory, 1_000.0);
        capacity.insert(ResourceKind::Bandwidth, 1_000.0);
        capacity.insert(ResourceKind::RunningTime, 1_000.0);
        capacity.insert(ResourceKind::BytesTransferred, 1_000_000.0);
        ResourceManagerConfig {
            enabled: true,
            capacity,
            ewma_alpha: 0.5,
            max_reject_fraction: 0.95,
        }
    }

    #[test]
    fn renewable_classification() {
        assert!(ResourceKind::Cpu.is_renewable());
        assert!(ResourceKind::Bandwidth.is_renewable());
        assert!(!ResourceKind::RunningTime.is_renewable());
        assert!(!ResourceKind::BytesTransferred.is_renewable());
        assert_eq!(ResourceKind::parse("cpu"), Some(ResourceKind::Cpu));
        assert_eq!(ResourceKind::parse("nope"), None);
    }

    #[test]
    fn disabled_manager_accepts_everything() {
        let manager = ResourceManager::disabled();
        manager.record("a.com", ResourceKind::Cpu, 1e12);
        manager.control();
        assert_eq!(manager.admit("a.com"), Admission::Accept);
        assert_eq!(manager.congestion_level(ResourceKind::Cpu), 0.0);
    }

    #[test]
    fn no_congestion_means_no_throttling() {
        let manager = ResourceManager::new(tiny_config());
        manager.record("a.com", ResourceKind::Cpu, 500.0);
        manager.control();
        assert_eq!(manager.admit("a.com"), Admission::Accept);
        assert_eq!(manager.site_usage("a.com").reject_fraction, 0.0);
    }

    #[test]
    fn congestion_throttles_proportionally_to_contribution() {
        let manager = ResourceManager::new(tiny_config());
        // hog consumes 10x what bystander consumes; the node is 4x over
        // capacity.
        manager.record("hog.com", ResourceKind::Cpu, 3_600.0);
        manager.record("bystander.org", ResourceKind::Cpu, 360.0);
        manager.control();
        let hog = manager.site_usage("hog.com").reject_fraction;
        let bystander = manager.site_usage("bystander.org").reject_fraction;
        assert!(
            hog > bystander,
            "hog {hog} should be throttled harder than {bystander}"
        );
        assert!(hog > 0.5);
        assert!(
            !manager.site_usage("hog.com").terminated,
            "no kill on first round"
        );

        // Throttled admission rejects roughly the configured fraction.
        let mut rejected = 0;
        for _ in 0..100 {
            if manager.admit("hog.com") == Admission::Throttle {
                rejected += 1;
            }
        }
        assert!(rejected > 40, "saw only {rejected} rejections");
    }

    #[test]
    fn persistent_congestion_terminates_the_top_offender() {
        let manager = ResourceManager::new(tiny_config());
        let meter = ResourceMeter::new();
        manager.register_meter("hog.com", meter.clone());
        // Round 1: congested — throttle.
        manager.record("hog.com", ResourceKind::Memory, 10_000.0);
        manager.record("small.org", ResourceKind::Memory, 100.0);
        manager.control();
        assert!(!manager.site_usage("hog.com").terminated);
        // Round 2: still congested — terminate the largest contributor.
        manager.record("hog.com", ResourceKind::Memory, 10_000.0);
        manager.record("small.org", ResourceKind::Memory, 100.0);
        manager.control();
        assert!(manager.site_usage("hog.com").terminated);
        assert!(!manager.site_usage("small.org").terminated);
        assert!(
            meter.is_killed(),
            "running pipelines of the offender are killed"
        );
        assert_eq!(manager.admit("hog.com"), Admission::Terminate);
        assert_eq!(manager.admit("small.org"), Admission::Accept);
        assert_eq!(manager.stats().kills, 1);
    }

    #[test]
    fn recovery_after_congestion_clears() {
        let manager = ResourceManager::new(tiny_config());
        manager.record("hog.com", ResourceKind::Cpu, 5_000.0);
        manager.control();
        manager.record("hog.com", ResourceKind::Cpu, 5_000.0);
        manager.control();
        assert!(manager.site_usage("hog.com").terminated);
        // The site stops misbehaving; the next control round restores it.
        manager.control();
        assert_eq!(manager.admit("hog.com"), Admission::Accept);
        // Its average decays over further quiet rounds (recovery from past
        // penalisation).
        let before = *manager
            .site_usage("hog.com")
            .average
            .get(&ResourceKind::Cpu)
            .unwrap_or(&0.0);
        // Need congestion for renewables to be charged; quiet rounds leave the
        // average as-is, but nonrenewable averages decay.
        assert!(before > 0.0);
    }

    #[test]
    fn congestion_level_reflects_usage_and_is_visible_to_scripts() {
        let manager = ResourceManager::new(tiny_config());
        assert_eq!(manager.congestion_level(ResourceKind::Cpu), 0.0);
        manager.record("a.com", ResourceKind::Cpu, 2_000.0);
        assert!((manager.congestion_level(ResourceKind::Cpu) - 2.0).abs() < 1e-9);
        manager.control();
        assert_eq!(
            manager.congestion_level(ResourceKind::Cpu),
            0.0,
            "new period"
        );
    }

    #[test]
    fn nonrenewable_resources_accumulate_without_congestion() {
        let manager = ResourceManager::new(tiny_config());
        manager.record("a.com", ResourceKind::BytesTransferred, 100.0);
        manager.control();
        manager.record("a.com", ResourceKind::BytesTransferred, 100.0);
        manager.control();
        let usage = manager.site_usage("a.com");
        assert!(*usage.average.get(&ResourceKind::BytesTransferred).unwrap() > 0.0);
    }

    #[test]
    fn admission_statistics_are_counted() {
        let manager = ResourceManager::new(tiny_config());
        for _ in 0..10 {
            manager.admit("a.com");
        }
        assert_eq!(manager.stats().accepted, 10);
        assert_eq!(manager.stats().throttled, 0);
    }
}
