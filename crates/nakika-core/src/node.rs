//! The Na Kika node: one edge-side proxy wiring together the cache, the
//! scripting pipeline, congestion-based resource control, hard state, access
//! logging and the cooperative-caching overlay.
//!
//! A node mediates one HTTP exchange at a time.  Transports never talk to it
//! directly: they drive the [`HttpService`](crate::service::HttpService)
//! stack a [`NodeBuilder`](crate::builder::NodeBuilder) produces, which binds
//! the node to its [`OriginFetch`] path and reads the current time off each
//! exchange's [`RequestCtx`](crate::service::RequestCtx) — so the same node
//! code runs unchanged under the discrete-event simulator, the real TCP
//! server, unit tests and the benchmarks.

use crate::cache::{CacheStats, ProxyCache};
use crate::pages;
use crate::peering;
use crate::pipeline::{
    CompiledStage, PipelineOutcome, PipelineRunner, StageCache, StageLoader, StageLookup,
};
use crate::programs::{ProgramCache, ScriptEngine};
use crate::resource::{Admission, ResourceKind, ResourceManager, ResourceManagerConfig};
use crate::service::{DispatchHint, NakikaError, RelayAttempt, RelayPlan};
use crate::vocab::VocabHooks;
use nakika_http::cache_control::{freshness, Freshness};
use nakika_http::pattern::Cidr;
use nakika_http::serialize::{serialize_request, serialize_request_absolute};
use nakika_http::{Body, Method, Request, Response};
use nakika_overlay::{Membership, NodeId, Overlay};
use nakika_script::ResourceMeter;
use nakika_state::{AccessLog, LogEntry, MessageBus, SiteStore, Update};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How a node obtains resources it does not have cached.
pub trait OriginFetch: Send + Sync {
    /// Fetches a resource from its origin server.
    fn fetch_origin(&self, request: &Request) -> Response;

    /// Fetches a resource from a peer Na Kika node.  `peer` is the payload
    /// the peer put in the overlay: its base URL (`http://host:port`) in a
    /// real deployment, or its node name under the simulator.  Connection
    /// and read failures surface as [`NakikaError::Upstream`] naming the
    /// peer, and the node counts them (`peer_misses`) before falling back
    /// to the origin — a dead peer is never silent.  The default falls back
    /// to the origin directly (the simulator's model of a peer fetch).
    fn fetch_peer(&self, peer: &str, request: &Request) -> Result<Response, NakikaError> {
        let _ = peer;
        Ok(self.fetch_origin(request))
    }

    /// True when this fetch path is a plain TCP exchange a readiness-driven
    /// transport may perform itself by splicing sockets (see
    /// [`RelayPlan`]).  The default is `false`: simulated, scripted and
    /// test origins answer from process memory, and a transport must not
    /// bypass them with real connections.  `TcpOrigin` in `nakika-server`
    /// overrides this.
    fn relay_eligible(&self) -> bool {
        false
    }
}

/// Node operating modes, matching the evaluation's configurations (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMode {
    /// A regular caching proxy: no overlay, no scripting (`Proxy`).
    PlainProxy,
    /// The proxy with an integrated DHT for cooperative caching (`DHT`).
    ProxyWithDht,
    /// The full Na Kika node: scripting pipeline, resource controls, and
    /// (when an overlay is attached) cooperative caching.
    Scripted,
}

/// Node configuration.  Constructed by
/// [`NodeBuilder`](crate::builder::NodeBuilder), which owns the defaults for
/// each of the paper's operating modes.
#[derive(Clone)]
pub struct NodeConfig {
    /// Node name (also the payload announced to the overlay).
    pub name: String,
    /// Operating mode.
    pub mode: NodeMode,
    /// URL of the client-side administrative control script.
    pub client_wall_url: String,
    /// URL of the server-side administrative control script.
    pub server_wall_url: String,
    /// Proxy-cache capacity in bytes.
    pub cache_capacity_bytes: usize,
    /// Number of proxy-cache shards; `0` derives the count from the
    /// capacity (see [`ProxyCache::new`]).
    pub cache_shards: usize,
    /// Heuristic freshness for responses without explicit expiration.
    pub heuristic_ttl: Duration,
    /// Freshness applied to compiled stages whose script response carries no
    /// explicit expiration, and to negative `nakika.js` entries.
    pub script_ttl: Duration,
    /// Address blocks considered local to the hosting organisation.
    pub local_networks: Vec<Cidr>,
    /// Resource-manager configuration.
    pub resource: ResourceManagerConfig,
    /// Seconds between executions of the congestion-control procedure.
    pub control_period_secs: u64,
    /// Per-site hard-state quota in bytes.
    pub hard_state_quota: usize,
    /// Which engine executes NkScript on this node (the bytecode VM by
    /// default; the tree-walking interpreter remains selectable as the
    /// reference engine and the `bench_scripted` ablation baseline).
    pub script_engine: ScriptEngine,
}

/// Statistics a node accumulates, consumed by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests handled (including rejected ones).
    pub requests: u64,
    /// Responses served from the local cache.
    pub cache_hits: u64,
    /// Responses fetched from a peer node found through the overlay.
    pub peer_hits: u64,
    /// Peer fetches that failed (peer down, error response), each falling
    /// back to the origin.
    pub peer_misses: u64,
    /// Responses fetched from the origin server.
    pub origin_fetches: u64,
    /// Hot cache entries this node pushed to successor peers.
    pub replication_pushes: u64,
    /// Client requests 307-redirected to the key's live consistent-hash
    /// owner instead of being relayed (owner-aware redirection).
    pub owner_redirects: u64,
    /// Responses generated entirely by scripts (no fetch at all).
    pub script_generated: u64,
    /// Requests rejected by throttling (server busy).
    pub throttled: u64,
    /// Requests rejected because the site's pipelines were terminated.
    pub terminated: u64,
    /// Script errors observed while processing requests.
    pub script_errors: u64,
    /// Na Kika Pages rendered.
    pub pages_rendered: u64,
}

/// Hot-entry replication state shared between the fetch path (which detects
/// hot keys at their consistent-hash owner and publishes them) and the
/// per-node worker thread (which drains the bus and pushes the entries to
/// the key's successor peers).
pub(crate) struct ReplicationShared {
    /// The per-node bus carrying hot-key announcements to the worker.
    pub(crate) bus: MessageBus,
    /// Topic the announcements travel on.
    pub(crate) topic: String,
    /// Publisher identity (distinct from the worker's subscription, so the
    /// bus does not suppress the messages as self-sends).
    pub(crate) publisher: String,
    /// Local cache hits at the owner before an entry counts as hot.
    pub(crate) threshold: u32,
    /// How many successor peers receive each hot entry.
    pub(crate) successors: usize,
    /// Per-key hit counts; `u32::MAX` marks an already-published key.
    hot: Mutex<HashMap<String, u32>>,
}

impl ReplicationShared {
    pub(crate) fn new(name: &str, successors: usize, threshold: u32) -> ReplicationShared {
        ReplicationShared {
            bus: MessageBus::new(),
            topic: "nakika/replicate".to_string(),
            publisher: format!("{name}#fetch"),
            threshold: threshold.max(1),
            successors: successors.max(1),
            hot: Mutex::new(HashMap::new()),
        }
    }
}

/// Shared fetch path: local cache, then overlay peers, then the origin.
#[derive(Clone)]
struct ResourceFetcher {
    node_name: String,
    public_addr: Option<String>,
    cache: Arc<ProxyCache>,
    overlay: Option<(Arc<Overlay>, NodeId)>,
    origin: Arc<dyn OriginFetch>,
    heuristic_ttl: Duration,
    stats: Arc<Mutex<NodeStats>>,
    replication: Option<Arc<ReplicationShared>>,
    gossip: Option<Arc<Membership>>,
}

/// The cache key the node's fetch path files `request` under — also the
/// consistent-hash key that peer routing and owner-aware redirection
/// locate the request's owner with.
pub(crate) fn cache_key(request: &Request) -> String {
    format!("{} {}", request.method, request.uri.to_origin())
}

/// Splits a peer's overlay payload (`http://host:port`, optional trailing
/// slash) into a connectable host/port pair; `None` when the payload is not
/// a base URL (a simulated node announcing its bare name).
fn peer_host_port(peer: &str) -> Option<(String, u16)> {
    let rest = peer.strip_prefix("http://").unwrap_or(peer);
    let rest = rest.trim_end_matches('/');
    if rest.is_empty() || rest.contains('/') {
        return None;
    }
    match rest.rsplit_once(':') {
        Some((host, port)) => port.parse().ok().map(|port| (host.to_string(), port)),
        None => Some((rest.to_string(), 80)),
    }
}

impl ResourceFetcher {
    fn cache_key(request: &Request) -> String {
        cache_key(request)
    }

    fn fetch(&self, request: &Request, now: u64) -> Response {
        let key = Self::cache_key(request);
        if request.method.is_cacheable() {
            if let Some(cached) = self.cache.get(&key, now) {
                self.stats.lock().cache_hits += 1;
                self.note_cache_hit(&key, request, now);
                return cached;
            }
            if let Some(response) = self.fetch_from_peers(&key, request, now) {
                return response;
            }
        }
        // The cooperative network's internal headers are not the origin's
        // business; strip them off requests that ran out of peers.
        let response = if peering::has_internal_headers(request) {
            let mut origin_request = request.clone();
            peering::strip_internal_headers(&mut origin_request);
            self.origin.fetch_origin(&origin_request)
        } else {
            self.origin.fetch_origin(request)
        };
        self.stats.lock().origin_fetches += 1;
        self.capture(key, &request.method, response, now)
    }

    /// True if `peer` (an overlay payload: node name or base URL) is this
    /// node itself — fetching from oneself over TCP would deadlock a
    /// single-threaded transport and is always pointless.
    fn is_self(&self, peer: &str) -> bool {
        peer == self.node_name || self.public_addr.as_deref() == Some(peer)
    }

    /// Cooperative caching: one cached copy anywhere in the overlay is
    /// enough to avoid an origin access.  Two routes are tried in order —
    /// a copy *announced* in the sloppy DHT (freshest information, may point
    /// at any node), then the key's consistent-hash *owner* (no announcement
    /// needed: the owner is where the network concentrates that key, so a
    /// miss routed there either hits or warms the right node).  Loop guards
    /// (`X-Nakika-Hops` budget and the `X-Nakika-Via` trail) bound the
    /// forwarding even when membership views diverge.  Every failed attempt
    /// is counted in `peer_misses`; `None` sends the caller to the origin.
    fn fetch_from_peers(&self, key: &str, request: &Request, now: u64) -> Option<Response> {
        let (overlay, node_id) = self.overlay.as_ref()?;
        if !peering::may_forward(request, &self.node_name) {
            return None;
        }
        let announced = overlay
            .get(*node_id, key, now)
            .into_iter()
            .map(|p| p.payload)
            .find(|payload| !self.is_self(payload));
        let owner = overlay
            .owner_of(key)
            .filter(|m| m.id != *node_id)
            .and_then(|m| m.addr)
            .filter(|addr| !self.is_self(addr));
        let mut forwarded = request.clone();
        peering::mark_forwarded(&mut forwarded, &self.node_name);
        let mut tried: Option<String> = None;
        for peer in [announced, owner].into_iter().flatten() {
            if tried.as_deref() == Some(peer.as_str()) {
                continue;
            }
            match self.origin.fetch_peer(&peer, &forwarded) {
                Ok(response) if response.status.is_success() => {
                    self.stats.lock().peer_hits += 1;
                    return Some(self.capture(key.to_string(), &request.method, response, now));
                }
                Ok(_) | Err(_) => {
                    // Typed errors already name the peer; the counter makes
                    // the fallback to the origin observable either way.
                    self.stats.lock().peer_misses += 1;
                    // The failed fetch is free negative evidence for the
                    // failure detector: suspicion, refutable through gossip.
                    if let Some(gossip) = &self.gossip {
                        gossip.note_failure(&peer);
                    }
                }
            }
            tried = Some(peer);
        }
        None
    }

    /// Hot-entry detection at the consistent-hash owner: after `threshold`
    /// local cache hits for a key this node owns, publish the entry on the
    /// replication bus for the worker to push to the key's successors.
    /// Replication pushes themselves are exempt, so a push warming a
    /// successor never re-triggers replication there.
    fn note_cache_hit(&self, key: &str, request: &Request, now: u64) {
        let Some(replication) = &self.replication else {
            return;
        };
        if peering::is_replication_push(request) {
            return;
        }
        let Some((overlay, node_id)) = &self.overlay else {
            return;
        };
        if overlay.owner_of(key).map(|m| m.id) != Some(*node_id) {
            return;
        }
        let mut hot = replication.hot.lock();
        if hot.len() > 4096 {
            // Bound the tracker; losing counts only delays replication.
            hot.clear();
        }
        let count = hot.entry(key.to_string()).or_insert(0);
        if *count == u32::MAX {
            return;
        }
        *count += 1;
        if *count < replication.threshold {
            return;
        }
        *count = u32::MAX;
        drop(hot);
        let update = Update {
            site: request.site(),
            key: key.to_string(),
            value: request.uri.to_origin().to_string(),
            timestamp: now,
        };
        replication.bus.publish(
            &replication.topic,
            &update.site,
            &replication.publisher,
            &update.encode(),
        );
    }

    /// Puts a fetched response on the path to the cache without ever forcing
    /// it into memory.  A buffered body is stored right away (the historical
    /// path — simulator, tests, script-generated content).  A *streamed*
    /// body is instead teed: chunks flow onward to whoever is relaying them,
    /// a bounded side copy accumulates, and only when the stream completes
    /// cleanly within the cache's entry budget does the copy get stored and
    /// announced.  Oversized or failed streams pass through uncached.
    fn capture(&self, key: String, method: &Method, mut response: Response, now: u64) -> Response {
        if !response.body.is_stream() {
            self.store_and_announce(&key, method, &response, now);
            return response;
        }
        // Don't bother teeing what the cache would refuse anyway — including
        // a body whose declared length already exceeds the entry budget,
        // which would otherwise accumulate a side copy only to discard it.
        let budget = self.cache.capacity_bytes();
        if !method.is_cacheable()
            || !matches!(
                freshness(method, &response, self.heuristic_ttl),
                Freshness::Fresh(_)
            )
            || response
                .body
                .size_hint()
                .is_some_and(|declared| declared > budget as u64)
        {
            return response;
        }
        let head = Response {
            status: response.status,
            version_11: response.version_11,
            headers: response.headers.clone(),
            body: Body::empty(),
        };
        let fetcher = self.clone();
        let method = method.clone();
        let body = std::mem::take(&mut response.body);
        response.body = body.tee(budget, move |bytes| {
            let mut full = head;
            // The stored copy is a complete instance: fix the framing
            // metadata the streamed original carried.
            full.headers.remove("Transfer-Encoding");
            full.headers.set("Content-Length", bytes.len().to_string());
            full.body = Body::from_bytes(bytes);
            fetcher.store_and_announce(&key, &method, &full, now);
        });
        response
    }

    fn store_and_announce(&self, key: &str, method: &Method, response: &Response, now: u64) {
        if !self.cache.put(key, method, response, now) {
            return;
        }
        if let Some((overlay, node_id)) = &self.overlay {
            let lifetime = match freshness(method, response, self.heuristic_ttl) {
                Freshness::Fresh(lifetime) => lifetime.as_secs().max(1),
                _ => return,
            };
            // Announce the base URL when the node serves real traffic so
            // peers can fetch the copy over TCP; simulated nodes announce
            // their name and the simulator resolves it.
            let payload = self.public_addr.as_deref().unwrap_or(&self.node_name);
            overlay.put(*node_id, key, payload, now + lifetime);
        }
    }
}

/// Stage loader backed by the node's fetch path and compiled-stage cache.
struct NodeStageLoader {
    fetcher: ResourceFetcher,
    stage_cache: Arc<StageCache>,
    programs: Arc<ProgramCache>,
    engine: ScriptEngine,
    hooks: VocabHooks,
    script_ttl: Duration,
}

impl StageLoader for NodeStageLoader {
    fn load(&self, url: &str, now: u64) -> Option<Arc<CompiledStage>> {
        match self.stage_cache.get(url, now) {
            StageLookup::Hit(stage) => return Some(stage),
            StageLookup::KnownAbsent => return None,
            StageLookup::Miss => {}
        }
        let request = Request::get(url);
        let mut response = self.fetcher.fetch(&request, now);
        // Scripts compile from complete sources; a stream that fails to
        // drain is treated like an absent script until its entry expires.
        let stream_failed = response.body.buffer().is_err();
        let fresh_until = now
            + match freshness(&Method::Get, &response, self.script_ttl) {
                Freshness::Fresh(lifetime) => lifetime.as_secs().max(1),
                _ => self.script_ttl.as_secs().max(1),
            };
        if stream_failed || !response.status.is_success() || response.body.is_empty() {
            self.stage_cache.put_absent(url, fresh_until);
            return None;
        }
        match CompiledStage::compile_with(
            url,
            &response.body.to_text(),
            &self.hooks,
            &self.programs,
            self.engine,
        ) {
            Ok(stage) => {
                let stage = Arc::new(stage);
                self.stage_cache.put(url, stage.clone(), fresh_until);
                Some(stage)
            }
            Err(_) => {
                // A broken script is treated like an absent one until its
                // cached copy expires and a (hopefully fixed) copy is fetched.
                self.stage_cache.put_absent(url, fresh_until);
                None
            }
        }
    }
}

/// One Na Kika edge node.
pub struct NaKikaNode {
    config: NodeConfig,
    cache: Arc<ProxyCache>,
    stage_cache: Arc<StageCache>,
    programs: Arc<ProgramCache>,
    resource: Arc<ResourceManager>,
    runner: PipelineRunner,
    store: Arc<SiteStore>,
    access_log: Arc<AccessLog>,
    overlay: Option<(Arc<Overlay>, NodeId)>,
    stats: Arc<Mutex<NodeStats>>,
    last_control: Mutex<u64>,
    /// Base URL of this node's proxy front-end, announced to the overlay
    /// instead of the bare node name once known.  Set after the server
    /// binds, hence the interior mutability.
    public_addr: Mutex<Option<String>>,
    replication: Option<Arc<ReplicationShared>>,
    gossip: Option<Arc<Membership>>,
}

impl NaKikaNode {
    /// Creates a node from its configuration (the builder's job).
    pub(crate) fn new(config: NodeConfig) -> NaKikaNode {
        let cache = Arc::new(if config.cache_shards == 0 {
            ProxyCache::new(config.cache_capacity_bytes, config.heuristic_ttl)
        } else {
            ProxyCache::with_shards(
                config.cache_capacity_bytes,
                config.heuristic_ttl,
                config.cache_shards,
            )
        });
        let resource = Arc::new(ResourceManager::new(config.resource.clone()));
        let store = Arc::new(SiteStore::new(config.hard_state_quota));
        NaKikaNode {
            cache,
            stage_cache: Arc::new(StageCache::new()),
            programs: Arc::new(ProgramCache::new()),
            resource,
            runner: PipelineRunner::default(),
            store,
            access_log: Arc::new(AccessLog::new()),
            overlay: None,
            stats: Arc::new(Mutex::new(NodeStats::default())),
            last_control: Mutex::new(0),
            public_addr: Mutex::new(None),
            replication: None,
            gossip: None,
            config,
        }
    }

    /// Attaches the node to a structured overlay under the given identifier
    /// (already joined by the caller).
    pub(crate) fn attach_overlay(&mut self, overlay: Arc<Overlay>, id: NodeId) {
        self.overlay = Some((overlay, id));
    }

    /// Attaches hot-entry replication state (the builder's job).
    pub(crate) fn attach_replication(&mut self, shared: Arc<ReplicationShared>) {
        self.replication = Some(shared);
    }

    /// The replication state, if hot-entry replication is configured.
    pub(crate) fn replication(&self) -> Option<&Arc<ReplicationShared>> {
        self.replication.as_ref()
    }

    /// Counts one successful hot-entry push (the replication worker's hook).
    pub(crate) fn record_replication_push(&self) {
        self.stats.lock().replication_pushes += 1;
    }

    /// Attaches the gossip membership (the builder's job).  From then on
    /// failed peer fetches feed the failure detector as negative evidence.
    pub(crate) fn attach_gossip(&mut self, membership: Arc<Membership>) {
        self.gossip = Some(membership);
    }

    /// The gossip membership, if dynamic membership is configured.
    pub fn gossip(&self) -> Option<&Arc<Membership>> {
        self.gossip.as_ref()
    }

    /// Counts one owner-aware client redirect (the redirect layer's hook).
    pub(crate) fn record_owner_redirect(&self) {
        self.stats.lock().owner_redirects += 1;
    }

    /// Records the base URL where this node's proxy front-end is reachable
    /// (e.g. `http://10.0.0.3:8080`).  From then on cache announcements to
    /// the overlay carry the URL instead of the bare node name, so peers can
    /// fetch over TCP.  Called after the server binds — ports are usually
    /// assigned then, not at build time.  The caller should also record the
    /// address in the overlay roster (`Overlay::set_addr`).
    pub fn set_public_addr(&self, addr: &str) {
        *self.public_addr.lock() = Some(addr.to_string());
    }

    /// The announced base URL, if [`set_public_addr`](Self::set_public_addr)
    /// was called.
    pub fn public_addr(&self) -> Option<String> {
        self.public_addr.lock().clone()
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The node's proxy cache (exposed for statistics and tests).
    pub fn cache(&self) -> &Arc<ProxyCache> {
        &self.cache
    }

    /// The node's resource manager.
    pub fn resource_manager(&self) -> &Arc<ResourceManager> {
        &self.resource
    }

    /// The node's hard-state store.
    pub fn store(&self) -> &Arc<SiteStore> {
        &self.store
    }

    /// The node's access log.
    pub fn access_log(&self) -> &Arc<AccessLog> {
        &self.access_log
    }

    /// Cache statistics snapshot, with the node-level cooperative-caching
    /// counters (`peer_hits`, `peer_misses`) and the compiled-program cache
    /// counters (`script_compiles`, `script_cache_hits`) overlaid so one
    /// call answers "where did my bytes come from" and "did scripts compile
    /// once" — the shards themselves see a peer-answered request as a plain
    /// miss and know nothing about scripts.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        let node = self.stats.lock();
        stats.peer_hits = node.peer_hits;
        stats.peer_misses = node.peer_misses;
        stats.owner_redirects = node.owner_redirects;
        drop(node);
        let (compiles, hits) = self.programs.counters();
        stats.script_compiles = compiles;
        stats.script_cache_hits = hits;
        stats
    }

    /// The node's compiled-program cache (exposed for statistics and tests).
    pub fn programs(&self) -> &Arc<ProgramCache> {
        &self.programs
    }

    /// Node statistics snapshot.
    pub fn stats(&self) -> NodeStats {
        *self.stats.lock()
    }

    /// Classifies one upcoming exchange for readiness-driven transports
    /// (see [`DispatchHint`]): [`DispatchHint::Inline`] when the node can
    /// answer `request` at `now_secs` without any origin, peer, or script
    /// I/O — the probes ([`contains_fresh`](ProxyCache::contains_fresh),
    /// [`StageCache::probe`]) mutate nothing — and
    /// [`DispatchHint::MayBlock`] otherwise.
    ///
    /// Scripted nodes used to answer `MayBlock` unconditionally.  With the
    /// bytecode VM a warm scripted pipeline is cheap enough for the event
    /// loop, so the node classifies it precisely instead: `Inline` when
    /// every stage the request would run is already compiled and cached
    /// (or known absent), no matched handler can call the blocking `Fetch`
    /// vocabulary or schedule further stages, and the response itself needs
    /// no fetch (fresh in cache, or an `onRequest` handler unconditionally
    /// generates it).  Pipelines executing on the reference interpreter
    /// stay `MayBlock` — tree-walking a handler is CPU work that does not
    /// belong on an event loop.
    ///
    /// The probe is a heuristic, not a lock: an entry can expire or be
    /// evicted between the probe and the call, in which case an `Inline`
    /// call degenerates into a blocking origin fetch on the event loop —
    /// exactly the pre-offload behavior, for that one request.  Transports
    /// pass the same context to both, so probe and lookup at least agree
    /// on the time.
    pub fn dispatch_hint(&self, request: &Request, now_secs: u64) -> DispatchHint {
        if !request.method.is_cacheable() {
            return DispatchHint::MayBlock;
        }
        let mut always_generates = false;
        if self.config.mode == NodeMode::Scripted {
            if self.config.script_engine != ScriptEngine::Vm {
                return DispatchHint::MayBlock;
            }
            // Rendering a page runs a fresh script compile per body; keep
            // it off the event loop.
            if pages::is_nkp(request.uri.extension(), None) {
                return DispatchHint::MayBlock;
            }
            let site_stage_url = format!("http://{}/nakika.js", request.site());
            for stage_url in [
                self.config.client_wall_url.as_str(),
                site_stage_url.as_str(),
                self.config.server_wall_url.as_str(),
            ] {
                match self.stage_cache.probe(stage_url, now_secs) {
                    StageLookup::KnownAbsent => {}
                    StageLookup::Miss => return DispatchHint::MayBlock,
                    StageLookup::Hit(stage) => {
                        if let Some(policy) = stage.find_closest_match(request) {
                            if policy.blocking_fetch || !policy.next_stages.is_empty() {
                                return DispatchHint::MayBlock;
                            }
                            if policy.always_generates {
                                // A generated response reverses the pipeline
                                // immediately: later stages never load or
                                // run, so their state is irrelevant (the
                                // server wall typically stays a cache miss
                                // forever on such pipelines).
                                always_generates = true;
                                break;
                            }
                        }
                    }
                }
            }
        }
        let key = ResourceFetcher::cache_key(request);
        if always_generates || self.cache.contains_fresh(&key, now_secs) {
            DispatchHint::Inline
        } else {
            DispatchHint::MayBlock
        }
    }

    /// Plans one cache miss as a socket-to-socket relay (see [`RelayPlan`]):
    /// the upstreams [`ResourceFetcher::fetch`] would try — announced peer,
    /// consistent-hash owner, origin — as connect targets plus serialized
    /// request bytes, with the fetch path's side effects (hit counters,
    /// cache capture, access logging) packaged as callbacks the transport
    /// runs at the matching moments.  Planning itself mutates nothing, so a
    /// transport that declines the plan and calls
    /// [`process`](NaKikaNode::process) instead double-counts nothing.
    ///
    /// `None` whenever the exchange cannot be a plain relay: the origin
    /// path is not raw TCP (`OriginFetch::relay_eligible`), the node runs
    /// scripts, resource control is enabled (admission must see every
    /// exchange), the method is not cacheable, the request carries a body,
    /// or the cache turned warm since the dispatch hint.
    pub(crate) fn relay_plan(
        &self,
        request: &Request,
        now_secs: u64,
        origin: &Arc<dyn OriginFetch>,
    ) -> Option<RelayPlan> {
        if !origin.relay_eligible() {
            return None;
        }
        if !matches!(
            self.config.mode,
            NodeMode::PlainProxy | NodeMode::ProxyWithDht
        ) {
            return None;
        }
        if self.resource.is_enabled() {
            return None;
        }
        if !request.method.is_cacheable() || !request.body.is_empty() {
            return None;
        }
        let key = cache_key(request);
        if self.cache.contains_fresh(&key, now_secs) {
            // Raced warm between the dispatch hint and now; the ordinary
            // call path answers from memory.
            return None;
        }

        let fetcher = ResourceFetcher {
            node_name: self.config.name.clone(),
            public_addr: self.public_addr.lock().clone(),
            cache: self.cache.clone(),
            overlay: match self.config.mode {
                NodeMode::PlainProxy => None,
                _ => self.overlay.clone(),
            },
            origin: origin.clone(),
            heuristic_ttl: self.config.heuristic_ttl,
            stats: self.stats.clone(),
            replication: match self.config.mode {
                NodeMode::PlainProxy => None,
                _ => self.replication.clone(),
            },
            gossip: self.gossip.clone(),
        };

        let mut attempts = Vec::new();
        if let Some((overlay, node_id)) = &fetcher.overlay {
            if peering::may_forward(request, &self.config.name) {
                let announced = overlay
                    .get(*node_id, &key, now_secs)
                    .into_iter()
                    .map(|p| p.payload)
                    .find(|payload| !fetcher.is_self(payload));
                let owner = overlay
                    .owner_of(&key)
                    .filter(|m| m.id != *node_id)
                    .and_then(|m| m.addr)
                    .filter(|addr| !fetcher.is_self(addr));
                let mut forwarded = request.clone();
                peering::mark_forwarded(&mut forwarded, &self.config.name);
                forwarded.headers.set("Connection", "close");
                let wire = serialize_request_absolute(&forwarded);
                let mut tried: Option<String> = None;
                for peer in [announced, owner].into_iter().flatten() {
                    if tried.as_deref() == Some(peer.as_str()) {
                        continue;
                    }
                    tried = Some(peer.clone());
                    let Some((host, port)) = peer_host_port(&peer) else {
                        continue;
                    };
                    let stats = self.stats.clone();
                    let gossip = self.gossip.clone();
                    let failed_peer = peer.clone();
                    attempts.push(RelayAttempt {
                        host,
                        port,
                        wire: wire.clone(),
                        label: format!("peer {peer}"),
                        fallback_on_error_status: true,
                        on_fail: Some(Arc::new(move || {
                            stats.lock().peer_misses += 1;
                            if let Some(gossip) = &gossip {
                                gossip.note_failure(&failed_peer);
                            }
                        })),
                    });
                }
            }
        }
        let peer_attempts = attempts.len();

        let mut origin_request = request.clone();
        if peering::has_internal_headers(&origin_request) {
            peering::strip_internal_headers(&mut origin_request);
        }
        origin_request.uri = origin_request.uri.to_origin();
        origin_request.headers.set("Connection", "close");
        attempts.push(RelayAttempt {
            host: origin_request.uri.host.clone(),
            port: origin_request.uri.port,
            label: origin_request.uri.to_string(),
            wire: serialize_request(&origin_request),
            fallback_on_error_status: false,
            on_fail: None,
        });

        let on_start = {
            let stats = self.stats.clone();
            let cache = self.cache.clone();
            let key = key.clone();
            Arc::new(move || {
                stats.lock().requests += 1;
                // The splice replaces the ordinary fetch, whose lookup
                // would have recorded this miss.
                cache.record_miss(&key);
            })
        };

        let site = request.site();
        let client = request.client_ip.to_string();
        let method_str = request.method.as_str().to_string();
        let url = request.uri.to_string();
        let finish = {
            let stats = self.stats.clone();
            let access_log = self.access_log.clone();
            let resource = self.resource.clone();
            let method = request.method.clone();
            let key = key.clone();
            let (site, client, method_str, url) = (
                site.clone(),
                client.clone(),
                method_str.clone(),
                url.clone(),
            );
            Arc::new(move |response: Response, attempt: usize| {
                {
                    let mut stats = stats.lock();
                    if attempt < peer_attempts {
                        stats.peer_hits += 1;
                    } else {
                        stats.origin_fetches += 1;
                    }
                }
                let response = fetcher.capture(key.clone(), &method, response, now_secs);
                access_log.record(
                    &site,
                    LogEntry {
                        timestamp: now_secs,
                        client: client.clone(),
                        method: method_str.clone(),
                        url: url.clone(),
                        status: response.status.as_u16(),
                        bytes: response.body.len(),
                    },
                );
                resource.record(
                    &site,
                    ResourceKind::BytesTransferred,
                    response.body.len() as f64,
                );
                response
            })
        };

        let fail = {
            let stats = self.stats.clone();
            let access_log = self.access_log.clone();
            Arc::new(move |reason: &str| {
                stats.lock().origin_fetches += 1;
                let response = NakikaError::Upstream {
                    url: url.clone(),
                    reason: reason.to_string(),
                }
                .to_response();
                access_log.record(
                    &site,
                    LogEntry {
                        timestamp: now_secs,
                        client: client.clone(),
                        method: method_str.clone(),
                        url: url.clone(),
                        status: response.status.as_u16(),
                        bytes: response.body.len(),
                    },
                );
                response
            })
        };

        Some(RelayPlan {
            attempts,
            on_start,
            finish,
            fail,
        })
    }

    /// Mediates one HTTP exchange at time `now_secs`, fetching whatever it
    /// needs through `origin`.  Admission rejections surface as typed
    /// [`NakikaError`]s; the transport at the outer edge decides their
    /// status mapping.
    pub(crate) fn process(
        &self,
        request: Request,
        now_secs: u64,
        origin: &Arc<dyn OriginFetch>,
    ) -> Result<Response, NakikaError> {
        self.stats.lock().requests += 1;
        self.maybe_run_control(now_secs);
        let site = request.site();

        // Admission control happens before any resources are expended.
        match self.resource.admit(&site) {
            Admission::Accept => {}
            Admission::Throttle => {
                self.stats.lock().throttled += 1;
                return Err(NakikaError::Throttled { site });
            }
            Admission::Terminate => {
                self.stats.lock().terminated += 1;
                return Err(NakikaError::Terminated { site });
            }
        }

        let fetcher = ResourceFetcher {
            node_name: self.config.name.clone(),
            public_addr: self.public_addr.lock().clone(),
            cache: self.cache.clone(),
            overlay: match self.config.mode {
                NodeMode::PlainProxy => None,
                _ => self.overlay.clone(),
            },
            origin: origin.clone(),
            heuristic_ttl: self.config.heuristic_ttl,
            stats: self.stats.clone(),
            replication: match self.config.mode {
                NodeMode::PlainProxy => None,
                _ => self.replication.clone(),
            },
            gossip: self.gossip.clone(),
        };

        let response = match self.config.mode {
            NodeMode::PlainProxy | NodeMode::ProxyWithDht => fetcher.fetch(&request, now_secs),
            NodeMode::Scripted => self.run_pipeline(request.clone(), now_secs, fetcher, &site),
        };

        self.access_log.record(
            &site,
            LogEntry {
                timestamp: now_secs,
                client: request.client_ip.to_string(),
                method: request.method.as_str().to_string(),
                url: request.uri.to_string(),
                status: response.status.as_u16(),
                bytes: response.body.len(),
            },
        );
        self.resource.record(
            &site,
            ResourceKind::BytesTransferred,
            (request.body.len() + response.body.len()) as f64,
        );
        Ok(response)
    }

    fn run_pipeline(
        &self,
        request: Request,
        now_secs: u64,
        fetcher: ResourceFetcher,
        site: &str,
    ) -> Response {
        let resource = self.resource.clone();
        // Scripts operate on complete instances (paper §3.1), so the
        // pipeline's view of every fetch is buffered; a stream that fails
        // mid-body becomes an upstream error response instead of a
        // silently truncated instance.  The tee in `capture` still fires
        // while draining, so buffered fetches populate the cache as usual.
        let buffered_fetch = {
            let fetcher = fetcher.clone();
            move |req: &Request| {
                let mut response = fetcher.fetch(req, now_secs);
                if let Err(e) = response.body.buffer() {
                    return NakikaError::Upstream {
                        url: req.uri.to_string(),
                        reason: format!("body stream failed: {e}"),
                    }
                    .to_response();
                }
                response
            }
        };
        let hooks = VocabHooks {
            fetch: Some({
                let fetch = buffered_fetch.clone();
                Arc::new(move |req: &Request| fetch(req))
            }),
            store: Some(self.store.clone()),
            access_log: Some(self.access_log.clone()),
            cache: Some(self.cache.clone()),
            local_networks: Arc::new(self.config.local_networks.clone()),
            congestion: Some(Arc::new(move |name: &str| {
                ResourceKind::parse(name)
                    .map(|kind| resource.congestion_level(kind))
                    .unwrap_or(0.0)
            })),
        };

        let loader = NodeStageLoader {
            fetcher: fetcher.clone(),
            stage_cache: self.stage_cache.clone(),
            programs: self.programs.clone(),
            engine: self.config.script_engine,
            hooks: hooks.clone(),
            script_ttl: self.config.script_ttl,
        };

        let meter = ResourceMeter::new();
        self.resource.register_meter(site, meter.clone());

        let site_stage_url = format!("http://{site}/nakika.js");
        let fetch_resource = buffered_fetch.clone();
        let outcome: PipelineOutcome = self.runner.execute(
            request,
            now_secs,
            &loader,
            &site_stage_url,
            &self.config.client_wall_url,
            &self.config.server_wall_url,
            &fetch_resource,
            &hooks,
            meter.clone(),
        );

        // Charge the pipeline's consumption to the site.
        self.resource
            .record(site, ResourceKind::Cpu, meter.steps() as f64);
        self.resource
            .record(site, ResourceKind::Memory, meter.allocated() as f64);
        self.resource.record(
            site,
            ResourceKind::Bandwidth,
            outcome.response.body.len() as f64,
        );
        self.resource.record(
            site,
            ResourceKind::RunningTime,
            1.0 + meter.steps() as f64 / 100_000.0,
        );

        {
            let mut stats = self.stats.lock();
            if outcome.generated_by_script {
                stats.script_generated += 1;
            }
            stats.script_errors += outcome.script_errors.len() as u64;
        }

        let mut response = outcome.response;
        // Na Kika Pages: render `.nkp` / `text/nkp` responses on the edge.
        let is_page = pages::is_nkp(
            outcome.final_request.uri.extension(),
            response.headers.content_type(),
        );
        if is_page && response.status.is_success() {
            let compiled = pages::compile_page(&response.body.to_text());
            match run_page(
                &compiled,
                &self.programs,
                self.config.script_engine,
                &hooks,
                &outcome.final_request,
                now_secs,
            ) {
                Ok(html) => {
                    response.headers.set("Content-Type", "text/html");
                    response.set_body(html);
                    self.stats.lock().pages_rendered += 1;
                }
                Err(_) => {
                    self.stats.lock().script_errors += 1;
                }
            }
        }
        response
    }

    fn maybe_run_control(&self, now_secs: u64) {
        if !self.resource.is_enabled() {
            return;
        }
        let mut last = self.last_control.lock();
        if now_secs >= *last + self.config.control_period_secs {
            *last = now_secs;
            drop(last);
            self.resource.control();
        }
    }
}

/// Runs a compiled Na Kika Page in a fresh sandboxed context with the node's
/// vocabularies bound to the current exchange.  The page's generated script
/// goes through the node's program cache, so a hot page parses and lowers to
/// bytecode once and every later render is a cache hit.
fn run_page(
    compiled: &str,
    programs: &ProgramCache,
    engine: ScriptEngine,
    hooks: &VocabHooks,
    request: &Request,
    now_secs: u64,
) -> Result<String, nakika_script::ScriptError> {
    let ctx = nakika_script::Context::new();
    nakika_script::stdlib::install(&ctx);
    let exchange = crate::vocab::new_exchange(request.clone(), now_secs);
    crate::vocab::install(&ctx, &exchange, hooks);
    let script = programs.get_or_compile(compiled)?;
    Ok(engine.run(&ctx, &script)?.to_display_string())
}

/// A convenience [`OriginFetch`] built from a closure — used by tests,
/// examples and the benchmark harness.
pub struct FnOrigin<F>(pub F);

impl<F> OriginFetch for FnOrigin<F>
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn fetch_origin(&self, request: &Request) -> Response {
        (self.0)(request)
    }
}

/// Wraps a closure into an `Arc<dyn OriginFetch>`.
pub fn origin_from_fn<F>(f: F) -> Arc<dyn OriginFetch>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    Arc::new(FnOrigin(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NodeBuilder;
    use crate::scripts;
    use crate::service::{HttpService, RequestCtx};
    use nakika_http::StatusCode;
    use nakika_overlay::{key_for, Location};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An origin that serves a small static site plus Na Kika scripts, and
    /// counts how many times it was contacted.
    struct TestOrigin {
        hits: AtomicU64,
        site_script: Option<String>,
    }

    impl TestOrigin {
        fn new(site_script: Option<&str>) -> Arc<TestOrigin> {
            Arc::new(TestOrigin {
                hits: AtomicU64::new(0),
                site_script: site_script.map(str::to_string),
            })
        }
        fn hits(&self) -> u64 {
            self.hits.load(Ordering::SeqCst)
        }
    }

    impl OriginFetch for TestOrigin {
        fn fetch_origin(&self, request: &Request) -> Response {
            self.hits.fetch_add(1, Ordering::SeqCst);
            let path = request.uri.path.as_str();
            if path.ends_with("nakika.js") {
                return match &self.site_script {
                    Some(src) => Response::ok("application/javascript", src.as_str())
                        .with_header("Cache-Control", "max-age=300"),
                    None => Response::error(StatusCode::NOT_FOUND),
                };
            }
            if path.ends_with("clientwall.js") || path.ends_with("serverwall.js") {
                return Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=300");
            }
            if path.ends_with(".nkp") {
                return Response::ok("text/nkp", "<p><?nkp= 6 * 7 ?></p>")
                    .with_header("Cache-Control", "no-store");
            }
            Response::ok("text/html", format!("<html>origin body for {path}</html>"))
                .with_header("Cache-Control", "max-age=120")
        }
    }

    #[test]
    fn plain_proxy_caches_and_serves() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::plain_proxy("edge-1")
            .origin(origin.clone())
            .build();
        let r1 = edge
            .call(Request::get("http://www.google.com/"), &RequestCtx::at(10))
            .unwrap();
        assert_eq!(r1.status, StatusCode::OK);
        let r2 = edge
            .call(Request::get("http://www.google.com/"), &RequestCtx::at(20))
            .unwrap();
        assert_eq!(r2.body.to_text(), r1.body.to_text());
        assert_eq!(origin.hits(), 1, "second access served from cache");
        let stats = edge.node().stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.origin_fetches, 1);
    }

    #[test]
    fn scripted_node_runs_walls_and_site_stage() {
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onResponse = function() { Response.setHeader('X-Edge', 'nakika'); };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        let resp = edge
            .call(
                Request::get("http://site.example/page"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("x-edge"), Some("nakika"));
        // Scripts (two walls + nakika.js) plus the page itself were fetched.
        assert_eq!(origin.hits(), 4);
        // A second request reuses the cached compiled stages and cached page.
        edge.call(
            Request::get("http://site.example/page"),
            &RequestCtx::at(20),
        )
        .unwrap();
        assert_eq!(origin.hits(), 4);
    }

    #[test]
    fn missing_site_script_is_negatively_cached() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        edge.call(Request::get("http://plain.example/a"), &RequestCtx::at(10))
            .unwrap();
        let hits_after_first = origin.hits();
        edge.call(Request::get("http://plain.example/b"), &RequestCtx::at(20))
            .unwrap();
        // Only the new page is fetched — not nakika.js again.
        assert_eq!(origin.hits(), hits_after_first + 1);
    }

    #[test]
    fn digital_library_wall_blocks_outside_clients() {
        // Serve Figure 5 as the client wall.
        struct WallOrigin;
        impl OriginFetch for WallOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                if request.uri.path.ends_with("clientwall.js") {
                    Response::ok("application/javascript", scripts::DIGITAL_LIBRARY_POLICY)
                        .with_header("Cache-Control", "max-age=300")
                } else if request.uri.path.ends_with(".js") {
                    Response::ok("application/javascript", scripts::EMPTY_WALL)
                        .with_header("Cache-Control", "max-age=300")
                } else {
                    Response::ok("text/html", "the full article")
                }
            }
        }
        let edge = NodeBuilder::scripted("edge-1")
            .local_network(Cidr::parse("128.122.0.0/16").unwrap())
            .origin(Arc::new(WallOrigin))
            .build();
        let outside = Request::get("http://bmj.bmjjournals.com/cgi/reprint/1")
            .with_client_ip("203.0.113.5".parse().unwrap());
        let resp = edge.call(outside, &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.status, StatusCode::UNAUTHORIZED);
        let inside = Request::get("http://bmj.bmjjournals.com/cgi/reprint/1")
            .with_client_ip("128.122.1.1".parse().unwrap());
        let resp = edge.call(inside, &RequestCtx::at(20)).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body.to_text(), "the full article");
    }

    #[test]
    fn warm_no_fetch_scripted_pipeline_dispatches_inline() {
        // A site stage whose onRequest always generates the response and
        // whose handlers never mention Fetch: once the stages are compiled
        // and cached, the whole pipeline is event-loop safe.
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onRequest = function() { Request.respond('text/html', 'generated on the edge'); };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        let request = Request::get("http://site.example/page");
        // Cold: the stage scripts are not compiled yet.
        assert_eq!(
            edge.node().dispatch_hint(&request, 10),
            DispatchHint::MayBlock
        );
        let resp = edge.call(request.clone(), &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "generated on the edge");
        // Warm: every stage is cached, no handler can fetch, and the
        // matched onRequest unconditionally responds — Inline, even though
        // the generated page itself is not in the proxy cache.
        assert_eq!(
            edge.node().dispatch_hint(&request, 20),
            DispatchHint::Inline
        );
        // POST is not cacheable and stays off the event loop.
        let post = Request::new(Method::Post, "http://site.example/page".parse().unwrap());
        assert_eq!(edge.node().dispatch_hint(&post, 20), DispatchHint::MayBlock);
    }

    #[test]
    fn fetch_capable_handlers_keep_the_pipeline_off_the_event_loop() {
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onResponse = function() {
                var extra = Fetch.get('http://other.example/banner');
                Response.setHeader('X-Banner-Status', '' + extra.status);
            };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        let request = Request::get("http://site.example/page");
        edge.call(request.clone(), &RequestCtx::at(10)).unwrap();
        // The page is fresh in cache, but the matched handler mentions
        // Fetch, so the pipeline may block on an embedded fetch.
        assert!(edge
            .node()
            .cache()
            .contains_fresh(&ResourceFetcher::cache_key(&request), 20));
        assert_eq!(
            edge.node().dispatch_hint(&request, 20),
            DispatchHint::MayBlock
        );
    }

    #[test]
    fn interpreter_engine_pipelines_always_dispatch_may_block() {
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onRequest = function() { Request.respond('text/html', 'generated'); };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .script_engine(crate::programs::ScriptEngine::Interp)
            .origin(origin.clone())
            .build();
        let request = Request::get("http://site.example/page");
        let resp = edge.call(request.clone(), &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "generated", "interp engine serves");
        assert_eq!(
            edge.node().dispatch_hint(&request, 20),
            DispatchHint::MayBlock
        );
    }

    #[test]
    fn scripts_compile_once_and_cache_stats_expose_the_counters() {
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onResponse = function() { Response.setHeader('X-Edge', 'nakika'); };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        edge.call(
            Request::get("http://site.example/page"),
            &RequestCtx::at(10),
        )
        .unwrap();
        // Three stage loads, but the two walls share one source: two
        // compiles, one program-cache hit.
        let stats = edge.node().cache_stats();
        assert_eq!(stats.script_compiles, 2);
        assert_eq!(stats.script_cache_hits, 1);
        // A page renders through the same cache: one compile on the first
        // render, a hit on the second (its `no-store` body is refetched,
        // but the generated script text is identical).
        for t in [20, 30] {
            edge.call(
                Request::get("http://site.example/hello.nkp"),
                &RequestCtx::at(t),
            )
            .unwrap();
        }
        let stats = edge.node().cache_stats();
        assert_eq!(stats.script_compiles, 3);
        assert_eq!(stats.script_cache_hits, 2);
    }

    #[test]
    fn nkp_pages_are_rendered_on_the_edge() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1").origin(origin).build();
        let resp = edge
            .call(
                Request::get("http://site.example/hello.nkp"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(resp.body.to_text(), "<p>42</p>");
        assert_eq!(resp.headers.content_type(), Some("text/html"));
        assert_eq!(edge.node().stats().pages_rendered, 1);
    }

    #[test]
    fn cooperative_caching_avoids_origin_when_a_peer_has_a_copy() {
        let overlay = Arc::new(Overlay::with_defaults());
        let id_a = key_for("edge-a");
        let id_b = key_for("edge-b");
        overlay.join(id_a, Location::new(0.0, 0.0));
        overlay.join(id_b, Location::new(1.0, 0.0));

        let origin = TestOrigin::new(None);
        let node_a = NodeBuilder::proxy_with_dht("edge-a")
            .overlay(overlay.clone(), id_a)
            .origin(origin.clone())
            .build();
        // Node A pulls the page from the origin and announces it.
        node_a
            .call(
                Request::get("http://shared.example/big"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(origin.hits(), 1);

        // Node B finds A's announcement and fetches from its peer instead.
        struct PeerAwareOrigin {
            inner: Arc<TestOrigin>,
            peer_fetches: AtomicU64,
        }
        impl OriginFetch for PeerAwareOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                self.inner.fetch_origin(request)
            }
            fn fetch_peer(&self, _peer: &str, request: &Request) -> Result<Response, NakikaError> {
                self.peer_fetches.fetch_add(1, Ordering::SeqCst);
                Ok(
                    Response::ok("text/html", format!("peer copy of {}", request.uri.path))
                        .with_header("Cache-Control", "max-age=120"),
                )
            }
        }
        let peer_origin = Arc::new(PeerAwareOrigin {
            inner: origin.clone(),
            peer_fetches: AtomicU64::new(0),
        });
        let node_b = NodeBuilder::proxy_with_dht("edge-b")
            .overlay(overlay.clone(), id_b)
            .origin(peer_origin.clone())
            .build();
        let resp = node_b
            .call(
                Request::get("http://shared.example/big"),
                &RequestCtx::at(20),
            )
            .unwrap();
        assert!(resp.body.to_text().contains("peer copy"));
        assert_eq!(peer_origin.peer_fetches.load(Ordering::SeqCst), 1);
        assert_eq!(origin.hits(), 1, "origin contacted only once in total");
        assert_eq!(node_b.node().stats().peer_hits, 1);
    }

    /// A test origin whose peer path is scripted: records every peer fetch
    /// and answers with a canned result.
    struct ScriptedPeerOrigin {
        origin_hits: AtomicU64,
        peer_calls: Mutex<Vec<(String, Request)>>,
        peer_result: Box<dyn Fn() -> Result<Response, NakikaError> + Send + Sync>,
    }

    impl ScriptedPeerOrigin {
        fn new(
            peer_result: impl Fn() -> Result<Response, NakikaError> + Send + Sync + 'static,
        ) -> Arc<ScriptedPeerOrigin> {
            Arc::new(ScriptedPeerOrigin {
                origin_hits: AtomicU64::new(0),
                peer_calls: Mutex::new(Vec::new()),
                peer_result: Box::new(peer_result),
            })
        }
    }

    impl OriginFetch for ScriptedPeerOrigin {
        fn fetch_origin(&self, _request: &Request) -> Response {
            self.origin_hits.fetch_add(1, Ordering::SeqCst);
            Response::ok("text/html", "origin copy").with_header("Cache-Control", "max-age=60")
        }
        fn fetch_peer(&self, peer: &str, request: &Request) -> Result<Response, NakikaError> {
            self.peer_calls
                .lock()
                .push((peer.to_string(), request.clone()));
            (self.peer_result)()
        }
    }

    /// An overlay where `owner_id` (XOR distance 0 to the request's cache
    /// key) owns the key at `owner_addr` and the local node sits at the far
    /// end of the id space.
    fn owner_overlay(request: &Request, owner_addr: &str) -> (Arc<Overlay>, NodeId) {
        let overlay = Arc::new(Overlay::with_defaults());
        let key = ResourceFetcher::cache_key(request);
        let owner_id = key_for(&key);
        let self_id = NodeId(owner_id.0 ^ u64::MAX);
        overlay.join_with_addr(owner_id, Location::new(0.0, 0.0), owner_addr);
        overlay.join(self_id, Location::new(0.0, 0.0));
        (overlay, self_id)
    }

    #[test]
    fn cache_miss_routes_to_the_consistent_hash_owner_peer() {
        let request = Request::get("http://owned.example/object");
        let (overlay, self_id) = owner_overlay(&request, "http://127.0.0.1:9999");
        let origin = ScriptedPeerOrigin::new(|| {
            Ok(Response::ok("text/html", "owner copy").with_header("Cache-Control", "max-age=60"))
        });
        let node = NodeBuilder::proxy_with_dht("edge-self")
            .overlay(overlay, self_id)
            .origin(origin.clone())
            .build();
        let resp = node.call(request.clone(), &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "owner copy");
        assert_eq!(origin.origin_hits.load(Ordering::SeqCst), 0);
        let calls = origin.peer_calls.lock();
        assert_eq!(calls.len(), 1);
        let (peer, forwarded) = &calls[0];
        assert_eq!(peer, "http://127.0.0.1:9999");
        // The forwarded request carries the loop-prevention headers.
        assert_eq!(forwarded.headers.get(peering::PEER_HOP_HEADER), Some("1"));
        assert!(peering::via_contains(forwarded, "edge-self"));
        drop(calls);
        let stats = node.node().stats();
        assert_eq!(stats.peer_hits, 1);
        assert_eq!(stats.peer_misses, 0);
        // The peer copy is now cached locally; the next request stays local.
        node.call(request, &RequestCtx::at(20)).unwrap();
        assert_eq!(origin.peer_calls.lock().len(), 1);
        let cache = node.node().cache_stats();
        assert_eq!(cache.peer_hits, 1, "exported through cache_stats too");
    }

    #[test]
    fn dead_peer_falls_back_to_origin_and_is_counted() {
        let request = Request::get("http://owned.example/object");
        let (overlay, self_id) = owner_overlay(&request, "http://127.0.0.1:1");
        let origin = ScriptedPeerOrigin::new(|| {
            Err(NakikaError::Upstream {
                url: "http://owned.example/object".to_string(),
                reason: "peer http://127.0.0.1:1: connection refused".to_string(),
            })
        });
        let node = NodeBuilder::proxy_with_dht("edge-self")
            .overlay(overlay, self_id)
            .origin(origin.clone())
            .build();
        let resp = node.call(request, &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "origin copy", "origin answered");
        assert_eq!(origin.origin_hits.load(Ordering::SeqCst), 1);
        let stats = node.node().stats();
        assert_eq!(stats.peer_misses, 1, "the failed peer fetch is visible");
        assert_eq!(stats.origin_fetches, 1);
        assert_eq!(node.node().cache_stats().peer_misses, 1);
    }

    #[test]
    fn hop_budget_and_via_trail_stop_routing_loops() {
        let request = Request::get("http://owned.example/object");
        let (overlay, self_id) = owner_overlay(&request, "http://127.0.0.1:9999");
        let origin = ScriptedPeerOrigin::new(|| panic!("peer must not be consulted"));
        let node = NodeBuilder::proxy_with_dht("edge-self")
            .overlay(overlay, self_id)
            .origin(origin.clone())
            .build();
        // A request that has exhausted its hop budget goes straight to the
        // origin...
        let mut exhausted = request.clone();
        for hop in ["edge-x", "edge-y"] {
            peering::mark_forwarded(&mut exhausted, hop);
        }
        let resp = node.call(exhausted, &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "origin copy");
        // ...and so does one that already passed through this node, even
        // with hops to spare.
        let node2 = {
            let request = Request::get("http://owned.example/other");
            let (overlay, self_id) = owner_overlay(&request, "http://127.0.0.1:9999");
            NodeBuilder::proxy_with_dht("edge-self")
                .overlay(overlay, self_id)
                .origin(origin.clone())
                .build()
        };
        let mut revisit = Request::get("http://owned.example/other");
        peering::mark_forwarded(&mut revisit, "edge-self");
        let resp = node2.call(revisit, &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.body.to_text(), "origin copy");
        assert_eq!(origin.origin_hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn throttling_rejects_requests_with_typed_errors() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1")
            .resource_capacity(ResourceKind::Cpu, 1.0)
            .control_period_secs(1)
            .origin(origin)
            .build();
        // Generate load well past the 1-step CPU "capacity", then let the
        // control loop run.
        for t in 0..20 {
            let _ = edge.call(Request::get("http://hog.example/page"), &RequestCtx::at(t));
        }
        let mut busy = 0;
        for t in 20..60 {
            let result = edge.call(Request::get("http://hog.example/page"), &RequestCtx::at(t));
            if matches!(
                result,
                Err(NakikaError::Throttled { .. } | NakikaError::Terminated { .. })
            ) {
                busy += 1;
            }
        }
        assert!(busy > 0, "expected some server-busy rejections");
        let stats = edge.node().stats();
        assert!(stats.throttled + stats.terminated > 0);
    }

    #[test]
    fn misbehaving_script_is_contained() {
        // The paper's misbehaving script: consume all memory by doubling a
        // string.  The sandbox cap stops each execution and congestion
        // control penalises the site, while other sites keep working.
        let hog_script = r#"
            p = new Policy();
            p.url = ["hog.example"];
            p.onResponse = function() {
                var s = 'xxxxxxxxxxxxxxxx';
                while (true) { s = s + s; }
            };
            p.register();
        "#;
        struct TwoSiteOrigin {
            hog_script: String,
        }
        impl OriginFetch for TwoSiteOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                let path = request.uri.path.as_str();
                if path.ends_with("nakika.js") {
                    if request.uri.host.contains("hog") {
                        return Response::ok("application/javascript", self.hog_script.as_str())
                            .with_header("Cache-Control", "max-age=300");
                    }
                    return Response::error(StatusCode::NOT_FOUND);
                }
                if path.ends_with(".js") {
                    return Response::ok("application/javascript", scripts::EMPTY_WALL)
                        .with_header("Cache-Control", "max-age=300");
                }
                Response::ok("text/html", "content").with_header("Cache-Control", "no-store")
            }
        }
        let edge = NodeBuilder::scripted("edge-1")
            .control_period_secs(1)
            .origin(Arc::new(TwoSiteOrigin {
                hog_script: hog_script.to_string(),
            }))
            .build();
        let mut good_ok = 0;
        for t in 0..30 {
            let hog = edge.call(Request::get("http://hog.example/x"), &RequestCtx::at(t));
            // Either the sandbox stopped the script (request still served) or
            // admission control rejected it outright.
            assert!(
                matches!(
                    hog,
                    Ok(ref r) if r.status == StatusCode::OK
                ) || matches!(
                    hog,
                    Err(NakikaError::Throttled { .. } | NakikaError::Terminated { .. })
                )
            );
            let good = edge.call(Request::get("http://good.example/x"), &RequestCtx::at(t));
            if matches!(good, Ok(ref r) if r.status == StatusCode::OK) {
                good_ok += 1;
            }
        }
        assert!(
            good_ok >= 28,
            "the well-behaved site stays available, got {good_ok}/30"
        );
        assert!(
            edge.node().stats().script_errors > 0,
            "the memory hog was stopped"
        );
    }
}
