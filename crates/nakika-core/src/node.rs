//! The Na Kika node: one edge-side proxy wiring together the cache, the
//! scripting pipeline, congestion-based resource control, hard state, access
//! logging and the cooperative-caching overlay.
//!
//! A node mediates one HTTP exchange at a time.  Transports never talk to it
//! directly: they drive the [`HttpService`](crate::service::HttpService)
//! stack a [`NodeBuilder`](crate::builder::NodeBuilder) produces, which binds
//! the node to its [`OriginFetch`] path and reads the current time off each
//! exchange's [`RequestCtx`](crate::service::RequestCtx) — so the same node
//! code runs unchanged under the discrete-event simulator, the real TCP
//! server, unit tests and the benchmarks.

use crate::cache::{CacheStats, ProxyCache};
use crate::pages;
use crate::pipeline::{
    CompiledStage, PipelineOutcome, PipelineRunner, StageCache, StageLoader, StageLookup,
};
use crate::resource::{Admission, ResourceKind, ResourceManager, ResourceManagerConfig};
use crate::service::{DispatchHint, NakikaError};
use crate::vocab::VocabHooks;
use nakika_http::cache_control::{freshness, Freshness};
use nakika_http::pattern::Cidr;
use nakika_http::{Body, Method, Request, Response};
use nakika_overlay::{NodeId, Overlay};
use nakika_script::ResourceMeter;
use nakika_state::{AccessLog, LogEntry, SiteStore};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// How a node obtains resources it does not have cached.
pub trait OriginFetch: Send + Sync {
    /// Fetches a resource from its origin server.
    fn fetch_origin(&self, request: &Request) -> Response;

    /// Fetches a resource from a peer Na Kika node that announced a cached
    /// copy (`peer` is the payload that peer stored in the overlay).  The
    /// default falls back to the origin.
    fn fetch_peer(&self, peer: &str, request: &Request) -> Response {
        let _ = peer;
        self.fetch_origin(request)
    }
}

/// Node operating modes, matching the evaluation's configurations (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMode {
    /// A regular caching proxy: no overlay, no scripting (`Proxy`).
    PlainProxy,
    /// The proxy with an integrated DHT for cooperative caching (`DHT`).
    ProxyWithDht,
    /// The full Na Kika node: scripting pipeline, resource controls, and
    /// (when an overlay is attached) cooperative caching.
    Scripted,
}

/// Node configuration.  Constructed by
/// [`NodeBuilder`](crate::builder::NodeBuilder), which owns the defaults for
/// each of the paper's operating modes.
#[derive(Clone)]
pub struct NodeConfig {
    /// Node name (also the payload announced to the overlay).
    pub name: String,
    /// Operating mode.
    pub mode: NodeMode,
    /// URL of the client-side administrative control script.
    pub client_wall_url: String,
    /// URL of the server-side administrative control script.
    pub server_wall_url: String,
    /// Proxy-cache capacity in bytes.
    pub cache_capacity_bytes: usize,
    /// Number of proxy-cache shards; `0` derives the count from the
    /// capacity (see [`ProxyCache::new`]).
    pub cache_shards: usize,
    /// Heuristic freshness for responses without explicit expiration.
    pub heuristic_ttl: Duration,
    /// Freshness applied to compiled stages whose script response carries no
    /// explicit expiration, and to negative `nakika.js` entries.
    pub script_ttl: Duration,
    /// Address blocks considered local to the hosting organisation.
    pub local_networks: Vec<Cidr>,
    /// Resource-manager configuration.
    pub resource: ResourceManagerConfig,
    /// Seconds between executions of the congestion-control procedure.
    pub control_period_secs: u64,
    /// Per-site hard-state quota in bytes.
    pub hard_state_quota: usize,
}

/// Statistics a node accumulates, consumed by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests handled (including rejected ones).
    pub requests: u64,
    /// Responses served from the local cache.
    pub cache_hits: u64,
    /// Responses fetched from a peer node found through the overlay.
    pub peer_hits: u64,
    /// Responses fetched from the origin server.
    pub origin_fetches: u64,
    /// Responses generated entirely by scripts (no fetch at all).
    pub script_generated: u64,
    /// Requests rejected by throttling (server busy).
    pub throttled: u64,
    /// Requests rejected because the site's pipelines were terminated.
    pub terminated: u64,
    /// Script errors observed while processing requests.
    pub script_errors: u64,
    /// Na Kika Pages rendered.
    pub pages_rendered: u64,
}

/// Shared fetch path: local cache, then overlay peers, then the origin.
#[derive(Clone)]
struct ResourceFetcher {
    node_name: String,
    cache: Arc<ProxyCache>,
    overlay: Option<(Arc<Overlay>, NodeId)>,
    origin: Arc<dyn OriginFetch>,
    heuristic_ttl: Duration,
    stats: Arc<Mutex<NodeStats>>,
}

impl ResourceFetcher {
    fn cache_key(request: &Request) -> String {
        format!("{} {}", request.method, request.uri.to_origin())
    }

    fn fetch(&self, request: &Request, now: u64) -> Response {
        let key = Self::cache_key(request);
        if request.method.is_cacheable() {
            if let Some(cached) = self.cache.get(&key, now) {
                self.stats.lock().cache_hits += 1;
                return cached;
            }
        }
        // Cooperative caching: one cached copy anywhere in the overlay is
        // enough to avoid an origin access.
        if let Some((overlay, node_id)) = &self.overlay {
            if request.method.is_cacheable() {
                let peers = overlay.get(*node_id, &key, now);
                if let Some(peer) = peers.iter().find(|p| p.payload != self.node_name) {
                    let response = self.origin.fetch_peer(&peer.payload, request);
                    if response.status.is_success() {
                        self.stats.lock().peer_hits += 1;
                        return self.capture(key, &request.method, response, now);
                    }
                }
            }
        }
        let response = self.origin.fetch_origin(request);
        self.stats.lock().origin_fetches += 1;
        self.capture(key, &request.method, response, now)
    }

    /// Puts a fetched response on the path to the cache without ever forcing
    /// it into memory.  A buffered body is stored right away (the historical
    /// path — simulator, tests, script-generated content).  A *streamed*
    /// body is instead teed: chunks flow onward to whoever is relaying them,
    /// a bounded side copy accumulates, and only when the stream completes
    /// cleanly within the cache's entry budget does the copy get stored and
    /// announced.  Oversized or failed streams pass through uncached.
    fn capture(&self, key: String, method: &Method, mut response: Response, now: u64) -> Response {
        if !response.body.is_stream() {
            self.store_and_announce(&key, method, &response, now);
            return response;
        }
        // Don't bother teeing what the cache would refuse anyway — including
        // a body whose declared length already exceeds the entry budget,
        // which would otherwise accumulate a side copy only to discard it.
        let budget = self.cache.capacity_bytes();
        if !method.is_cacheable()
            || !matches!(
                freshness(method, &response, self.heuristic_ttl),
                Freshness::Fresh(_)
            )
            || response
                .body
                .size_hint()
                .is_some_and(|declared| declared > budget as u64)
        {
            return response;
        }
        let head = Response {
            status: response.status,
            version_11: response.version_11,
            headers: response.headers.clone(),
            body: Body::empty(),
        };
        let fetcher = self.clone();
        let method = method.clone();
        let body = std::mem::take(&mut response.body);
        response.body = body.tee(budget, move |bytes| {
            let mut full = head;
            // The stored copy is a complete instance: fix the framing
            // metadata the streamed original carried.
            full.headers.remove("Transfer-Encoding");
            full.headers.set("Content-Length", bytes.len().to_string());
            full.body = Body::from_bytes(bytes);
            fetcher.store_and_announce(&key, &method, &full, now);
        });
        response
    }

    fn store_and_announce(&self, key: &str, method: &Method, response: &Response, now: u64) {
        if !self.cache.put(key, method, response, now) {
            return;
        }
        if let Some((overlay, node_id)) = &self.overlay {
            let lifetime = match freshness(method, response, self.heuristic_ttl) {
                Freshness::Fresh(lifetime) => lifetime.as_secs().max(1),
                _ => return,
            };
            overlay.put(*node_id, key, &self.node_name, now + lifetime);
        }
    }
}

/// Stage loader backed by the node's fetch path and compiled-stage cache.
struct NodeStageLoader {
    fetcher: ResourceFetcher,
    stage_cache: Arc<StageCache>,
    hooks: VocabHooks,
    script_ttl: Duration,
}

impl StageLoader for NodeStageLoader {
    fn load(&self, url: &str, now: u64) -> Option<Arc<CompiledStage>> {
        match self.stage_cache.get(url, now) {
            StageLookup::Hit(stage) => return Some(stage),
            StageLookup::KnownAbsent => return None,
            StageLookup::Miss => {}
        }
        let request = Request::get(url);
        let mut response = self.fetcher.fetch(&request, now);
        // Scripts compile from complete sources; a stream that fails to
        // drain is treated like an absent script until its entry expires.
        let stream_failed = response.body.buffer().is_err();
        let fresh_until = now
            + match freshness(&Method::Get, &response, self.script_ttl) {
                Freshness::Fresh(lifetime) => lifetime.as_secs().max(1),
                _ => self.script_ttl.as_secs().max(1),
            };
        if stream_failed || !response.status.is_success() || response.body.is_empty() {
            self.stage_cache.put_absent(url, fresh_until);
            return None;
        }
        match CompiledStage::compile(url, &response.body.to_text(), &self.hooks) {
            Ok(stage) => {
                let stage = Arc::new(stage);
                self.stage_cache.put(url, stage.clone(), fresh_until);
                Some(stage)
            }
            Err(_) => {
                // A broken script is treated like an absent one until its
                // cached copy expires and a (hopefully fixed) copy is fetched.
                self.stage_cache.put_absent(url, fresh_until);
                None
            }
        }
    }
}

/// One Na Kika edge node.
pub struct NaKikaNode {
    config: NodeConfig,
    cache: Arc<ProxyCache>,
    stage_cache: Arc<StageCache>,
    resource: Arc<ResourceManager>,
    runner: PipelineRunner,
    store: Arc<SiteStore>,
    access_log: Arc<AccessLog>,
    overlay: Option<(Arc<Overlay>, NodeId)>,
    stats: Arc<Mutex<NodeStats>>,
    last_control: Mutex<u64>,
}

impl NaKikaNode {
    /// Creates a node from its configuration (the builder's job).
    pub(crate) fn new(config: NodeConfig) -> NaKikaNode {
        let cache = Arc::new(if config.cache_shards == 0 {
            ProxyCache::new(config.cache_capacity_bytes, config.heuristic_ttl)
        } else {
            ProxyCache::with_shards(
                config.cache_capacity_bytes,
                config.heuristic_ttl,
                config.cache_shards,
            )
        });
        let resource = Arc::new(ResourceManager::new(config.resource.clone()));
        let store = Arc::new(SiteStore::new(config.hard_state_quota));
        NaKikaNode {
            cache,
            stage_cache: Arc::new(StageCache::new()),
            resource,
            runner: PipelineRunner::default(),
            store,
            access_log: Arc::new(AccessLog::new()),
            overlay: None,
            stats: Arc::new(Mutex::new(NodeStats::default())),
            last_control: Mutex::new(0),
            config,
        }
    }

    /// Attaches the node to a structured overlay under the given identifier
    /// (already joined by the caller).
    pub(crate) fn attach_overlay(&mut self, overlay: Arc<Overlay>, id: NodeId) {
        self.overlay = Some((overlay, id));
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The node's proxy cache (exposed for statistics and tests).
    pub fn cache(&self) -> &Arc<ProxyCache> {
        &self.cache
    }

    /// The node's resource manager.
    pub fn resource_manager(&self) -> &Arc<ResourceManager> {
        &self.resource
    }

    /// The node's hard-state store.
    pub fn store(&self) -> &Arc<SiteStore> {
        &self.store
    }

    /// The node's access log.
    pub fn access_log(&self) -> &Arc<AccessLog> {
        &self.access_log
    }

    /// Cache statistics snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Node statistics snapshot.
    pub fn stats(&self) -> NodeStats {
        *self.stats.lock()
    }

    /// Classifies one upcoming exchange for readiness-driven transports
    /// (see [`DispatchHint`]): [`DispatchHint::Inline`] when the node can
    /// answer `request` at `now_secs` from its warm cache without any
    /// origin, peer, or script I/O — the probe is the cache's
    /// [`contains_fresh`](ProxyCache::contains_fresh), which mutates
    /// nothing — and [`DispatchHint::MayBlock`] otherwise.
    ///
    /// Scripted nodes always answer `MayBlock`: even a warm page may pull
    /// wall/site scripts through the fetch path, and pipeline execution is
    /// CPU work that does not belong on an event loop either.
    ///
    /// The probe is a heuristic, not a lock: an entry can expire or be
    /// evicted between the probe and the call, in which case an `Inline`
    /// call degenerates into a blocking origin fetch on the event loop —
    /// exactly the pre-offload behavior, for that one request.  Transports
    /// pass the same context to both, so probe and lookup at least agree
    /// on the time.
    pub fn dispatch_hint(&self, request: &Request, now_secs: u64) -> DispatchHint {
        if self.config.mode == NodeMode::Scripted {
            return DispatchHint::MayBlock;
        }
        if !request.method.is_cacheable() {
            return DispatchHint::MayBlock;
        }
        let key = ResourceFetcher::cache_key(request);
        if self.cache.contains_fresh(&key, now_secs) {
            DispatchHint::Inline
        } else {
            DispatchHint::MayBlock
        }
    }

    /// Mediates one HTTP exchange at time `now_secs`, fetching whatever it
    /// needs through `origin`.  Admission rejections surface as typed
    /// [`NakikaError`]s; the transport at the outer edge decides their
    /// status mapping.
    pub(crate) fn process(
        &self,
        request: Request,
        now_secs: u64,
        origin: &Arc<dyn OriginFetch>,
    ) -> Result<Response, NakikaError> {
        self.stats.lock().requests += 1;
        self.maybe_run_control(now_secs);
        let site = request.site();

        // Admission control happens before any resources are expended.
        match self.resource.admit(&site) {
            Admission::Accept => {}
            Admission::Throttle => {
                self.stats.lock().throttled += 1;
                return Err(NakikaError::Throttled { site });
            }
            Admission::Terminate => {
                self.stats.lock().terminated += 1;
                return Err(NakikaError::Terminated { site });
            }
        }

        let fetcher = ResourceFetcher {
            node_name: self.config.name.clone(),
            cache: self.cache.clone(),
            overlay: match self.config.mode {
                NodeMode::PlainProxy => None,
                _ => self.overlay.clone(),
            },
            origin: origin.clone(),
            heuristic_ttl: self.config.heuristic_ttl,
            stats: self.stats.clone(),
        };

        let response = match self.config.mode {
            NodeMode::PlainProxy | NodeMode::ProxyWithDht => fetcher.fetch(&request, now_secs),
            NodeMode::Scripted => self.run_pipeline(request.clone(), now_secs, fetcher, &site),
        };

        self.access_log.record(
            &site,
            LogEntry {
                timestamp: now_secs,
                client: request.client_ip.to_string(),
                method: request.method.as_str().to_string(),
                url: request.uri.to_string(),
                status: response.status.as_u16(),
                bytes: response.body.len(),
            },
        );
        self.resource.record(
            &site,
            ResourceKind::BytesTransferred,
            (request.body.len() + response.body.len()) as f64,
        );
        Ok(response)
    }

    fn run_pipeline(
        &self,
        request: Request,
        now_secs: u64,
        fetcher: ResourceFetcher,
        site: &str,
    ) -> Response {
        let resource = self.resource.clone();
        // Scripts operate on complete instances (paper §3.1), so the
        // pipeline's view of every fetch is buffered; a stream that fails
        // mid-body becomes an upstream error response instead of a
        // silently truncated instance.  The tee in `capture` still fires
        // while draining, so buffered fetches populate the cache as usual.
        let buffered_fetch = {
            let fetcher = fetcher.clone();
            move |req: &Request| {
                let mut response = fetcher.fetch(req, now_secs);
                if let Err(e) = response.body.buffer() {
                    return NakikaError::Upstream {
                        url: req.uri.to_string(),
                        reason: format!("body stream failed: {e}"),
                    }
                    .to_response();
                }
                response
            }
        };
        let hooks = VocabHooks {
            fetch: Some({
                let fetch = buffered_fetch.clone();
                Arc::new(move |req: &Request| fetch(req))
            }),
            store: Some(self.store.clone()),
            access_log: Some(self.access_log.clone()),
            cache: Some(self.cache.clone()),
            local_networks: Arc::new(self.config.local_networks.clone()),
            congestion: Some(Arc::new(move |name: &str| {
                ResourceKind::parse(name)
                    .map(|kind| resource.congestion_level(kind))
                    .unwrap_or(0.0)
            })),
        };

        let loader = NodeStageLoader {
            fetcher: fetcher.clone(),
            stage_cache: self.stage_cache.clone(),
            hooks: hooks.clone(),
            script_ttl: self.config.script_ttl,
        };

        let meter = ResourceMeter::new();
        self.resource.register_meter(site, meter.clone());

        let site_stage_url = format!("http://{site}/nakika.js");
        let fetch_resource = buffered_fetch.clone();
        let outcome: PipelineOutcome = self.runner.execute(
            request,
            now_secs,
            &loader,
            &site_stage_url,
            &self.config.client_wall_url,
            &self.config.server_wall_url,
            &fetch_resource,
            &hooks,
            meter.clone(),
        );

        // Charge the pipeline's consumption to the site.
        self.resource
            .record(site, ResourceKind::Cpu, meter.steps() as f64);
        self.resource
            .record(site, ResourceKind::Memory, meter.allocated() as f64);
        self.resource.record(
            site,
            ResourceKind::Bandwidth,
            outcome.response.body.len() as f64,
        );
        self.resource.record(
            site,
            ResourceKind::RunningTime,
            1.0 + meter.steps() as f64 / 100_000.0,
        );

        {
            let mut stats = self.stats.lock();
            if outcome.generated_by_script {
                stats.script_generated += 1;
            }
            stats.script_errors += outcome.script_errors.len() as u64;
        }

        let mut response = outcome.response;
        // Na Kika Pages: render `.nkp` / `text/nkp` responses on the edge.
        let is_page = pages::is_nkp(
            outcome.final_request.uri.extension(),
            response.headers.content_type(),
        );
        if is_page && response.status.is_success() {
            let compiled = pages::compile_page(&response.body.to_text());
            match run_page(&compiled, &hooks, &outcome.final_request, now_secs) {
                Ok(html) => {
                    response.headers.set("Content-Type", "text/html");
                    response.set_body(html);
                    self.stats.lock().pages_rendered += 1;
                }
                Err(_) => {
                    self.stats.lock().script_errors += 1;
                }
            }
        }
        response
    }

    fn maybe_run_control(&self, now_secs: u64) {
        if !self.resource.is_enabled() {
            return;
        }
        let mut last = self.last_control.lock();
        if now_secs >= *last + self.config.control_period_secs {
            *last = now_secs;
            drop(last);
            self.resource.control();
        }
    }
}

/// Runs a compiled Na Kika Page in a fresh sandboxed context with the node's
/// vocabularies bound to the current exchange.
fn run_page(
    compiled: &str,
    hooks: &VocabHooks,
    request: &Request,
    now_secs: u64,
) -> Result<String, nakika_script::ScriptError> {
    let ctx = nakika_script::Context::new();
    nakika_script::stdlib::install(&ctx);
    let exchange = crate::vocab::new_exchange(request.clone(), now_secs);
    crate::vocab::install(&ctx, &exchange, hooks);
    let program = nakika_script::parse_program(compiled)?;
    let mut interp = nakika_script::Interpreter::new(&ctx);
    Ok(interp.run(&program)?.to_display_string())
}

/// A convenience [`OriginFetch`] built from a closure — used by tests,
/// examples and the benchmark harness.
pub struct FnOrigin<F>(pub F);

impl<F> OriginFetch for FnOrigin<F>
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn fetch_origin(&self, request: &Request) -> Response {
        (self.0)(request)
    }
}

/// Wraps a closure into an `Arc<dyn OriginFetch>`.
pub fn origin_from_fn<F>(f: F) -> Arc<dyn OriginFetch>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    Arc::new(FnOrigin(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NodeBuilder;
    use crate::scripts;
    use crate::service::{HttpService, RequestCtx};
    use nakika_http::StatusCode;
    use nakika_overlay::{key_for, Location};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An origin that serves a small static site plus Na Kika scripts, and
    /// counts how many times it was contacted.
    struct TestOrigin {
        hits: AtomicU64,
        site_script: Option<String>,
    }

    impl TestOrigin {
        fn new(site_script: Option<&str>) -> Arc<TestOrigin> {
            Arc::new(TestOrigin {
                hits: AtomicU64::new(0),
                site_script: site_script.map(str::to_string),
            })
        }
        fn hits(&self) -> u64 {
            self.hits.load(Ordering::SeqCst)
        }
    }

    impl OriginFetch for TestOrigin {
        fn fetch_origin(&self, request: &Request) -> Response {
            self.hits.fetch_add(1, Ordering::SeqCst);
            let path = request.uri.path.as_str();
            if path.ends_with("nakika.js") {
                return match &self.site_script {
                    Some(src) => Response::ok("application/javascript", src.as_str())
                        .with_header("Cache-Control", "max-age=300"),
                    None => Response::error(StatusCode::NOT_FOUND),
                };
            }
            if path.ends_with("clientwall.js") || path.ends_with("serverwall.js") {
                return Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=300");
            }
            if path.ends_with(".nkp") {
                return Response::ok("text/nkp", "<p><?nkp= 6 * 7 ?></p>")
                    .with_header("Cache-Control", "no-store");
            }
            Response::ok("text/html", format!("<html>origin body for {path}</html>"))
                .with_header("Cache-Control", "max-age=120")
        }
    }

    #[test]
    fn plain_proxy_caches_and_serves() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::plain_proxy("edge-1")
            .origin(origin.clone())
            .build();
        let r1 = edge
            .call(Request::get("http://www.google.com/"), &RequestCtx::at(10))
            .unwrap();
        assert_eq!(r1.status, StatusCode::OK);
        let r2 = edge
            .call(Request::get("http://www.google.com/"), &RequestCtx::at(20))
            .unwrap();
        assert_eq!(r2.body.to_text(), r1.body.to_text());
        assert_eq!(origin.hits(), 1, "second access served from cache");
        let stats = edge.node().stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.origin_fetches, 1);
    }

    #[test]
    fn scripted_node_runs_walls_and_site_stage() {
        let site_script = r#"
            p = new Policy();
            p.url = ["site.example"];
            p.onResponse = function() { Response.setHeader('X-Edge', 'nakika'); };
            p.register();
        "#;
        let origin = TestOrigin::new(Some(site_script));
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        let resp = edge
            .call(
                Request::get("http://site.example/page"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("x-edge"), Some("nakika"));
        // Scripts (two walls + nakika.js) plus the page itself were fetched.
        assert_eq!(origin.hits(), 4);
        // A second request reuses the cached compiled stages and cached page.
        edge.call(
            Request::get("http://site.example/page"),
            &RequestCtx::at(20),
        )
        .unwrap();
        assert_eq!(origin.hits(), 4);
    }

    #[test]
    fn missing_site_script_is_negatively_cached() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1")
            .origin(origin.clone())
            .build();
        edge.call(Request::get("http://plain.example/a"), &RequestCtx::at(10))
            .unwrap();
        let hits_after_first = origin.hits();
        edge.call(Request::get("http://plain.example/b"), &RequestCtx::at(20))
            .unwrap();
        // Only the new page is fetched — not nakika.js again.
        assert_eq!(origin.hits(), hits_after_first + 1);
    }

    #[test]
    fn digital_library_wall_blocks_outside_clients() {
        // Serve Figure 5 as the client wall.
        struct WallOrigin;
        impl OriginFetch for WallOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                if request.uri.path.ends_with("clientwall.js") {
                    Response::ok("application/javascript", scripts::DIGITAL_LIBRARY_POLICY)
                        .with_header("Cache-Control", "max-age=300")
                } else if request.uri.path.ends_with(".js") {
                    Response::ok("application/javascript", scripts::EMPTY_WALL)
                        .with_header("Cache-Control", "max-age=300")
                } else {
                    Response::ok("text/html", "the full article")
                }
            }
        }
        let edge = NodeBuilder::scripted("edge-1")
            .local_network(Cidr::parse("128.122.0.0/16").unwrap())
            .origin(Arc::new(WallOrigin))
            .build();
        let outside = Request::get("http://bmj.bmjjournals.com/cgi/reprint/1")
            .with_client_ip("203.0.113.5".parse().unwrap());
        let resp = edge.call(outside, &RequestCtx::at(10)).unwrap();
        assert_eq!(resp.status, StatusCode::UNAUTHORIZED);
        let inside = Request::get("http://bmj.bmjjournals.com/cgi/reprint/1")
            .with_client_ip("128.122.1.1".parse().unwrap());
        let resp = edge.call(inside, &RequestCtx::at(20)).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body.to_text(), "the full article");
    }

    #[test]
    fn nkp_pages_are_rendered_on_the_edge() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1").origin(origin).build();
        let resp = edge
            .call(
                Request::get("http://site.example/hello.nkp"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(resp.body.to_text(), "<p>42</p>");
        assert_eq!(resp.headers.content_type(), Some("text/html"));
        assert_eq!(edge.node().stats().pages_rendered, 1);
    }

    #[test]
    fn cooperative_caching_avoids_origin_when_a_peer_has_a_copy() {
        let overlay = Arc::new(Overlay::with_defaults());
        let id_a = key_for("edge-a");
        let id_b = key_for("edge-b");
        overlay.join(id_a, Location::new(0.0, 0.0));
        overlay.join(id_b, Location::new(1.0, 0.0));

        let origin = TestOrigin::new(None);
        let node_a = NodeBuilder::proxy_with_dht("edge-a")
            .overlay(overlay.clone(), id_a)
            .origin(origin.clone())
            .build();
        // Node A pulls the page from the origin and announces it.
        node_a
            .call(
                Request::get("http://shared.example/big"),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(origin.hits(), 1);

        // Node B finds A's announcement and fetches from its peer instead.
        struct PeerAwareOrigin {
            inner: Arc<TestOrigin>,
            peer_fetches: AtomicU64,
        }
        impl OriginFetch for PeerAwareOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                self.inner.fetch_origin(request)
            }
            fn fetch_peer(&self, _peer: &str, request: &Request) -> Response {
                self.peer_fetches.fetch_add(1, Ordering::SeqCst);
                Response::ok("text/html", format!("peer copy of {}", request.uri.path))
                    .with_header("Cache-Control", "max-age=120")
            }
        }
        let peer_origin = Arc::new(PeerAwareOrigin {
            inner: origin.clone(),
            peer_fetches: AtomicU64::new(0),
        });
        let node_b = NodeBuilder::proxy_with_dht("edge-b")
            .overlay(overlay.clone(), id_b)
            .origin(peer_origin.clone())
            .build();
        let resp = node_b
            .call(
                Request::get("http://shared.example/big"),
                &RequestCtx::at(20),
            )
            .unwrap();
        assert!(resp.body.to_text().contains("peer copy"));
        assert_eq!(peer_origin.peer_fetches.load(Ordering::SeqCst), 1);
        assert_eq!(origin.hits(), 1, "origin contacted only once in total");
        assert_eq!(node_b.node().stats().peer_hits, 1);
    }

    #[test]
    fn throttling_rejects_requests_with_typed_errors() {
        let origin = TestOrigin::new(None);
        let edge = NodeBuilder::scripted("edge-1")
            .resource_capacity(ResourceKind::Cpu, 1.0)
            .control_period_secs(1)
            .origin(origin)
            .build();
        // Generate load well past the 1-step CPU "capacity", then let the
        // control loop run.
        for t in 0..20 {
            let _ = edge.call(Request::get("http://hog.example/page"), &RequestCtx::at(t));
        }
        let mut busy = 0;
        for t in 20..60 {
            let result = edge.call(Request::get("http://hog.example/page"), &RequestCtx::at(t));
            if matches!(
                result,
                Err(NakikaError::Throttled { .. } | NakikaError::Terminated { .. })
            ) {
                busy += 1;
            }
        }
        assert!(busy > 0, "expected some server-busy rejections");
        let stats = edge.node().stats();
        assert!(stats.throttled + stats.terminated > 0);
    }

    #[test]
    fn misbehaving_script_is_contained() {
        // The paper's misbehaving script: consume all memory by doubling a
        // string.  The sandbox cap stops each execution and congestion
        // control penalises the site, while other sites keep working.
        let hog_script = r#"
            p = new Policy();
            p.url = ["hog.example"];
            p.onResponse = function() {
                var s = 'xxxxxxxxxxxxxxxx';
                while (true) { s = s + s; }
            };
            p.register();
        "#;
        struct TwoSiteOrigin {
            hog_script: String,
        }
        impl OriginFetch for TwoSiteOrigin {
            fn fetch_origin(&self, request: &Request) -> Response {
                let path = request.uri.path.as_str();
                if path.ends_with("nakika.js") {
                    if request.uri.host.contains("hog") {
                        return Response::ok("application/javascript", self.hog_script.as_str())
                            .with_header("Cache-Control", "max-age=300");
                    }
                    return Response::error(StatusCode::NOT_FOUND);
                }
                if path.ends_with(".js") {
                    return Response::ok("application/javascript", scripts::EMPTY_WALL)
                        .with_header("Cache-Control", "max-age=300");
                }
                Response::ok("text/html", "content").with_header("Cache-Control", "no-store")
            }
        }
        let edge = NodeBuilder::scripted("edge-1")
            .control_period_secs(1)
            .origin(Arc::new(TwoSiteOrigin {
                hog_script: hog_script.to_string(),
            }))
            .build();
        let mut good_ok = 0;
        for t in 0..30 {
            let hog = edge.call(Request::get("http://hog.example/x"), &RequestCtx::at(t));
            // Either the sandbox stopped the script (request still served) or
            // admission control rejected it outright.
            assert!(
                matches!(
                    hog,
                    Ok(ref r) if r.status == StatusCode::OK
                ) || matches!(
                    hog,
                    Err(NakikaError::Throttled { .. } | NakikaError::Terminated { .. })
                )
            );
            let good = edge.call(Request::get("http://good.example/x"), &RequestCtx::at(t));
            if matches!(good, Ok(ref r) if r.status == StatusCode::OK) {
                good_ok += 1;
            }
        }
        assert!(
            good_ok >= 28,
            "the well-behaved site stays available, got {good_ok}/30"
        );
        assert!(
            edge.node().stats().script_errors > 0,
            "the memory hog was stopped"
        );
    }
}
