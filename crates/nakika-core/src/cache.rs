//! The proxy cache: expiration-based caching of original and processed
//! content (paper §3.1, §4).
//!
//! Na Kika deliberately builds on the web's expiration-based consistency
//! model for everything it caches — static resources, dynamically created
//! content, and the scripts themselves (which is also how security-policy
//! updates propagate: publish the new script and let cached copies expire).
//! The cache is shared by all sites on a node and bounded in bytes, evicting
//! the entries that expire soonest first and then the least recently used.

use nakika_http::cache_control::{freshness, Freshness};
use nakika_http::{Method, Response};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Cache statistics used throughout the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone)]
struct Entry {
    response: Response,
    fresh_until: u64,
    last_used: u64,
    size: usize,
}

/// A bounded, expiration-based response cache.
pub struct ProxyCache {
    entries: Mutex<HashMap<String, Entry>>,
    stats: Mutex<CacheStats>,
    capacity_bytes: usize,
    used_bytes: Mutex<usize>,
    /// Heuristic freshness applied when the origin gives no expiration
    /// information (the deployment knob; the evaluation's cold/warm contrast
    /// only needs *some* positive lifetime).
    heuristic: Duration,
}

impl ProxyCache {
    /// Creates a cache bounded to `capacity_bytes`, with the given heuristic
    /// freshness lifetime for responses lacking explicit expiration metadata.
    pub fn new(capacity_bytes: usize, heuristic: Duration) -> ProxyCache {
        ProxyCache {
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            capacity_bytes,
            used_bytes: Mutex::new(0),
            heuristic,
        }
    }

    /// A cache with defaults suitable for tests and examples: 256 MiB and a
    /// 60-second heuristic lifetime.
    pub fn with_defaults() -> ProxyCache {
        ProxyCache::new(256 * 1024 * 1024, Duration::from_secs(60))
    }

    /// Looks up a fresh response for `key` at time `now_secs`.
    pub fn get(&self, key: &str, now_secs: u64) -> Option<Response> {
        let mut entries = self.entries.lock();
        let result = match entries.get_mut(key) {
            Some(entry) if entry.fresh_until > now_secs => {
                entry.last_used = now_secs;
                Some(entry.response.clone())
            }
            _ => None,
        };
        drop(entries);
        let mut stats = self.stats.lock();
        if result.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        result
    }

    /// Stores a response under `key` if HTTP's caching rules allow a shared
    /// cache to do so.  Returns true when the entry was stored.
    pub fn put(&self, key: &str, method: &Method, response: &Response, now_secs: u64) -> bool {
        let lifetime = match freshness(method, response, self.heuristic) {
            Freshness::Fresh(lifetime) => lifetime,
            Freshness::Revalidate | Freshness::Uncacheable => return false,
        };
        let size = response.body.len() + 512;
        if size > self.capacity_bytes {
            return false;
        }
        let entry = Entry {
            response: response.clone(),
            fresh_until: now_secs + lifetime.as_secs().max(1),
            last_used: now_secs,
            size,
        };
        let mut entries = self.entries.lock();
        let mut used = self.used_bytes.lock();
        if let Some(old) = entries.insert(key.to_string(), entry) {
            *used -= old.size;
        }
        *used += size;
        // Evict while over budget: expired first, then soonest-to-expire /
        // least recently used.
        let mut evictions = 0u64;
        while *used > self.capacity_bytes {
            let victim = entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| (e.fresh_until, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = entries.remove(&k) {
                        *used -= e.size;
                        evictions += 1;
                    }
                }
                None => break,
            }
        }
        drop(entries);
        drop(used);
        let mut stats = self.stats.lock();
        stats.inserts += 1;
        stats.evictions += evictions;
        true
    }

    /// Removes an entry (used when integrity verification rejects cached
    /// content).
    pub fn invalidate(&self, key: &str) -> bool {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.remove(key) {
            *self.used_bytes.lock() -= e.size;
            true
        } else {
            false
        }
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().clear();
        *self.used_bytes.lock() = 0;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted to cached entries.
    pub fn used_bytes(&self) -> usize {
        *self.used_bytes.lock()
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::{Response, StatusCode};

    fn cacheable(body: &str, max_age: u64) -> Response {
        Response::ok("text/html", body).with_header("Cache-Control", &format!("max-age={max_age}"))
    }

    #[test]
    fn hit_after_put_miss_after_expiry() {
        let cache = ProxyCache::with_defaults();
        let resp = cacheable("home page", 300);
        assert!(cache.put("http://g.com/", &Method::Get, &resp, 100));
        assert!(cache.get("http://g.com/", 150).is_some());
        assert!(cache.get("http://g.com/", 500).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncacheable_responses_are_not_stored() {
        let cache = ProxyCache::with_defaults();
        let private = Response::ok("text/html", "x").with_header("Cache-Control", "private");
        assert!(!cache.put("http://a.com/", &Method::Get, &private, 0));
        let post_target = cacheable("y", 100);
        assert!(!cache.put("http://a.com/post", &Method::Post, &post_target, 0));
        let error = Response::error(StatusCode::SERVICE_UNAVAILABLE);
        assert!(!cache.put("http://a.com/busy", &Method::Get, &error, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn heuristic_lifetime_applies_without_explicit_expiry() {
        let cache = ProxyCache::new(1 << 20, Duration::from_secs(60));
        let resp = Response::ok("text/html", "implicit");
        assert!(cache.put("http://a.com/", &Method::Get, &resp, 0));
        assert!(cache.get("http://a.com/", 30).is_some());
        assert!(cache.get("http://a.com/", 61).is_none());
        // With a zero heuristic nothing is stored.
        let strict = ProxyCache::new(1 << 20, Duration::ZERO);
        assert!(!strict.put("http://a.com/", &Method::Get, &resp, 0));
    }

    #[test]
    fn eviction_keeps_usage_within_capacity() {
        let cache = ProxyCache::new(4096, Duration::from_secs(60));
        for i in 0..10 {
            let resp = cacheable(&"x".repeat(700), 1000);
            cache.put(&format!("http://a.com/{i}"), &Method::Get, &resp, i);
        }
        assert!(cache.used_bytes() <= 4096);
        assert!(cache.len() < 10);
        assert!(cache.stats().evictions > 0);
        // The most recently inserted entry survives.
        assert!(cache.get("http://a.com/9", 10).is_some());
    }

    #[test]
    fn oversized_objects_are_refused() {
        let cache = ProxyCache::new(1024, Duration::from_secs(60));
        let big = cacheable(&"x".repeat(10_000), 1000);
        assert!(!cache.put("http://a.com/big", &Method::Get, &big, 0));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn replacing_an_entry_updates_accounting() {
        let cache = ProxyCache::new(1 << 20, Duration::from_secs(60));
        let small = cacheable("small", 100);
        let large = cacheable(&"L".repeat(1000), 100);
        cache.put("http://a.com/", &Method::Get, &large, 0);
        let used_large = cache.used_bytes();
        cache.put("http://a.com/", &Method::Get, &small, 1);
        assert!(cache.used_bytes() < used_large);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = ProxyCache::with_defaults();
        cache.put("http://a.com/", &Method::Get, &cacheable("x", 100), 0);
        assert!(cache.invalidate("http://a.com/"));
        assert!(!cache.invalidate("http://a.com/"));
        cache.put("http://a.com/", &Method::Get, &cacheable("x", 100), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
