//! The proxy cache: expiration-based caching of original and processed
//! content (paper §3.1, §4), partitioned into independently locked shards.
//!
//! Na Kika deliberately builds on the web's expiration-based consistency
//! model for everything it caches — static resources, dynamically created
//! content, and the scripts themselves (which is also how security-policy
//! updates propagate: publish the new script and let cached copies expire).
//! The cache is shared by all sites on a node and bounded in bytes, evicting
//! the entries that expire soonest first and then the least recently used.
//!
//! # Sharding
//!
//! A single-lock cache serializes every transport thread (or reactor) that
//! touches it, so under real concurrency the cache becomes the node's
//! bottleneck even when every lookup is a hit.  [`ProxyCache`] therefore
//! partitions its entries into `N` shards by a hash of the key; each shard
//! has its own lock, its own byte budget (`capacity / N`) and its own
//! statistics, so two requests for different resources almost never contend.
//! Eviction is shard-local on the hot path, which keeps lock hold times
//! short.  Admission still accepts any object up to the *total* capacity —
//! sharding must not shrink the largest cacheable object to `capacity / N` —
//! and an entry bigger than its shard's budget evicts the rest of the shard
//! and lives there alone.  The global budget stays a hard invariant: a
//! relaxed total-bytes counter notices when oversize entries push the
//! aggregate past `capacity`, and a slow-path sweep then evicts globally,
//! taking one shard lock at a time (never two, so it cannot deadlock with
//! concurrent inserts).
//!
//! The shard count is chosen from the byte capacity so that small caches
//! (tests, constrained deployments) keep exact single-shard semantics, and
//! can be pinned explicitly with [`ProxyCache::with_shards`] or
//! [`NodeBuilder::cache_shards`](crate::builder::NodeBuilder::cache_shards).
//!
//! ```
//! use nakika_core::cache::ProxyCache;
//! use nakika_http::{Method, Response};
//! use std::time::Duration;
//!
//! let cache = ProxyCache::with_shards(1 << 20, Duration::from_secs(60), 8);
//! assert_eq!(cache.shard_count(), 8);
//! let page = Response::ok("text/html", "hi").with_header("Cache-Control", "max-age=60");
//! cache.put("http://a.example/", &Method::Get, &page, 100);
//! assert!(cache.get("http://a.example/", 110).is_some());
//! // Aggregated over every shard:
//! assert_eq!(cache.stats().hits, 1);
//! ```

use nakika_http::cache_control::{freshness, Freshness};
use nakika_http::{Method, Response};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Cache statistics used throughout the evaluation harness.
///
/// On a sharded cache these are aggregated across every shard by
/// [`ProxyCache::stats`]; [`ProxyCache::shard_stats`] exposes the per-shard
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Local misses answered by a cooperative peer instead of the origin.
    ///
    /// Counted by the node, not the cache shards themselves: the shards see
    /// a peer-answered request as a plain miss.  [`ProxyCache::stats`] always
    /// reports `0`; `NaKikaNode::cache_stats` overlays the node's counter so
    /// operators read one coherent snapshot.
    pub peer_hits: u64,
    /// Peer fetches attempted but not answered (peer down, non-success, or
    /// loop-guarded), each falling back to the origin.  Like
    /// [`peer_hits`](CacheStats::peer_hits), maintained by the node.
    pub peer_misses: u64,
    /// Client requests 307-redirected to the key's live consistent-hash
    /// owner instead of being relayed.  Like
    /// [`peer_hits`](CacheStats::peer_hits), maintained by the node.
    pub owner_redirects: u64,
    /// Scripts parsed and lowered to bytecode — one per distinct source the
    /// node has ever run (walls, site stages, pages).  Maintained by the
    /// node's compiled-program cache, not the shards; [`ProxyCache::stats`]
    /// always reports `0` and `NaKikaNode::cache_stats` overlays the real
    /// counter.
    pub script_compiles: u64,
    /// Script executions whose compiled program came from the program cache
    /// instead of being recompiled.  Maintained by the node, like
    /// [`script_compiles`](CacheStats::script_compiles).
    pub script_cache_hits: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum — how shard statistics aggregate.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            inserts: self.inserts + other.inserts,
            evictions: self.evictions + other.evictions,
            peer_hits: self.peer_hits + other.peer_hits,
            peer_misses: self.peer_misses + other.peer_misses,
            owner_redirects: self.owner_redirects + other.owner_redirects,
            script_compiles: self.script_compiles + other.script_compiles,
            script_cache_hits: self.script_cache_hits + other.script_cache_hits,
        }
    }
}

#[derive(Clone)]
struct Entry {
    response: Response,
    fresh_until: u64,
    last_used: u64,
    size: usize,
}

/// One shard: entries, byte accounting and statistics behind a single lock,
/// so a shard operation takes exactly one lock acquisition.
#[derive(Default)]
struct ShardState {
    entries: HashMap<String, Entry>,
    used_bytes: usize,
    stats: CacheStats,
}

/// A bounded, expiration-based response cache, sharded by key hash.
pub struct ProxyCache {
    shards: Vec<Mutex<ShardState>>,
    /// Total byte capacity — also the admission limit for a single object,
    /// exactly as in the unsharded design.
    capacity_bytes: usize,
    /// Byte budget of each shard (total capacity divided by shard count).
    shard_capacity: usize,
    /// Running total of bytes across all shards, maintained alongside the
    /// per-shard accounting; lets `put` notice a global overshoot without
    /// touching the other shards' locks.
    used_total: AtomicUsize,
    /// Heuristic freshness applied when the origin gives no expiration
    /// information (the deployment knob; the evaluation's cold/warm contrast
    /// only needs *some* positive lifetime).
    heuristic: Duration,
}

/// Smallest byte budget worth giving a shard of its own: below this,
/// splitting hurts (entries stop fitting) more than lock contention does.
const MIN_SHARD_BYTES: usize = 1 << 20;

/// Default upper bound on the automatically chosen shard count.
const DEFAULT_MAX_SHARDS: usize = 16;

impl ProxyCache {
    /// Creates a cache bounded to `capacity_bytes`, with the given heuristic
    /// freshness lifetime for responses lacking explicit expiration metadata.
    ///
    /// The shard count is derived from the capacity: one shard per
    /// [`MIN_SHARD_BYTES`](self) of budget, capped at 16 — so tests with
    /// kilobyte-sized caches get exact single-shard eviction behavior while
    /// production-sized caches spread contention.
    pub fn new(capacity_bytes: usize, heuristic: Duration) -> ProxyCache {
        let shards = (capacity_bytes / MIN_SHARD_BYTES).clamp(1, DEFAULT_MAX_SHARDS);
        ProxyCache::with_shards(capacity_bytes, heuristic, shards)
    }

    /// Creates a cache with an explicit shard count (clamped to at least 1).
    pub fn with_shards(
        capacity_bytes: usize,
        heuristic: Duration,
        shard_count: usize,
    ) -> ProxyCache {
        let shard_count = shard_count.max(1);
        ProxyCache {
            shards: (0..shard_count).map(|_| Mutex::default()).collect(),
            capacity_bytes,
            shard_capacity: (capacity_bytes / shard_count).max(1),
            used_total: AtomicUsize::new(0),
            heuristic,
        }
    }

    /// A cache with defaults suitable for tests and examples: 256 MiB and a
    /// 60-second heuristic lifetime.
    pub fn with_defaults() -> ProxyCache {
        ProxyCache::new(256 * 1024 * 1024, Duration::from_secs(60))
    }

    /// Number of shards the key space is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total byte capacity — also the largest entry the cache will admit,
    /// and therefore the budget a streaming tee may buffer on the side
    /// before giving up on caching a response (see
    /// [`NaKikaNode`](crate::node::NaKikaNode)'s fetch path).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The shard responsible for `key` (FNV-1a over the key bytes — cheap,
    /// deterministic, and good enough dispersion for URL-shaped keys).
    fn shard(&self, key: &str) -> &Mutex<ShardState> {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Non-mutating freshness probe: true when a fresh entry for `key`
    /// exists at `now_secs`.  Unlike [`ProxyCache::get`] it counts no
    /// hit/miss and touches no recency, so probing is free of statistical
    /// side effects — readiness transports use it (through
    /// [`NaKikaNode::dispatch_hint`](crate::node::NaKikaNode::dispatch_hint))
    /// to classify a request as a warm hit before deciding where to run
    /// the service call.
    pub fn contains_fresh(&self, key: &str, now_secs: u64) -> bool {
        let shard = self.shard(key).lock();
        shard
            .entries
            .get(key)
            .is_some_and(|entry| entry.fresh_until > now_secs)
    }

    /// Records a miss for `key` without touching the entry map.  A
    /// readiness transport that answers a miss by splicing bytes on its
    /// event loop never runs the ordinary [`get`](ProxyCache::get), but
    /// the exchange must still account one cache lookup (see
    /// `NaKikaNode::relay_plan`); counting it at adoption time keeps
    /// `hits + misses` equal to requests served on every transport.
    pub fn record_miss(&self, key: &str) {
        self.shard(key).lock().stats.misses += 1;
    }

    /// Looks up a fresh response for `key` at time `now_secs`.
    pub fn get(&self, key: &str, now_secs: u64) -> Option<Response> {
        let mut shard = self.shard(key).lock();
        let result = match shard.entries.get_mut(key) {
            Some(entry) if entry.fresh_until > now_secs => {
                entry.last_used = now_secs;
                Some(entry.response.clone())
            }
            _ => None,
        };
        if result.is_some() {
            shard.stats.hits += 1;
        } else {
            shard.stats.misses += 1;
        }
        result
    }

    /// Stores a response under `key` if HTTP's caching rules allow a shared
    /// cache to do so.  Returns true when the entry was stored.
    ///
    /// Only fully buffered bodies are stored: a streaming body
    /// (`nakika_http::Body::Stream`) is refused, because the cache must not be the
    /// thing that forces a large response into memory.  Streamed responses
    /// are captured instead by the tee in the node's fetch path, which
    /// calls back here with the buffered copy once the stream completes
    /// within budget.
    pub fn put(&self, key: &str, method: &Method, response: &Response, now_secs: u64) -> bool {
        if response.body.is_stream() {
            return false;
        }
        let lifetime = match freshness(method, response, self.heuristic) {
            Freshness::Fresh(lifetime) => lifetime,
            Freshness::Revalidate | Freshness::Uncacheable => return false,
        };
        // Admission is judged against the *total* capacity, as in the
        // unsharded design — sharding must not silently shrink the largest
        // cacheable object to capacity/N.  An entry bigger than its shard's
        // budget ends up alone in its shard (the local eviction loop clears
        // everything else and stops), and the global sweep afterwards keeps
        // the aggregate within the total capacity.
        let size = response.body.len() + 512;
        if size > self.capacity_bytes {
            return false;
        }
        let entry = Entry {
            response: response.clone(),
            fresh_until: now_secs + lifetime.as_secs().max(1),
            last_used: now_secs,
            size,
        };
        let mut shard = self.shard(key).lock();
        if let Some(old) = shard.entries.insert(key.to_string(), entry) {
            shard.used_bytes -= old.size;
            self.used_total.fetch_sub(old.size, Ordering::Relaxed);
        }
        shard.used_bytes += size;
        self.used_total.fetch_add(size, Ordering::Relaxed);
        // Evict while over the shard's budget: expired first, then
        // soonest-to-expire / least recently used.  Shard-local by design —
        // no other shard's lock is touched on this hot path.
        let mut evictions = 0u64;
        while shard.used_bytes > self.shard_capacity {
            let victim = shard
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| (e.fresh_until, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = shard.entries.remove(&k) {
                        shard.used_bytes -= e.size;
                        self.used_total.fetch_sub(e.size, Ordering::Relaxed);
                        evictions += 1;
                    }
                }
                None => break,
            }
        }
        shard.stats.inserts += 1;
        shard.stats.evictions += evictions;
        drop(shard);
        // Oversize entries (bigger than one shard's budget) can push the
        // aggregate past the total capacity even though every shard honored
        // its own budget as far as it could; the slow-path sweep restores
        // the global invariant.
        if self.used_total.load(Ordering::Relaxed) > self.capacity_bytes {
            self.enforce_global_budget(key);
        }
        true
    }

    /// Evicts globally — worst victim across all shards, one shard lock at
    /// a time — until total usage fits the capacity again.  `protect` (the
    /// key just inserted) is never chosen, mirroring the shard-local loop.
    fn enforce_global_budget(&self, protect: &str) {
        while self.used_total.load(Ordering::Relaxed) > self.capacity_bytes {
            let mut victim: Option<(usize, String, (u64, u64))> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock();
                if let Some((k, e)) = shard
                    .entries
                    .iter()
                    .filter(|(k, _)| k.as_str() != protect)
                    .min_by_key(|(_, e)| (e.fresh_until, e.last_used))
                {
                    let score = (e.fresh_until, e.last_used);
                    if victim.as_ref().is_none_or(|(_, _, best)| score < *best) {
                        victim = Some((i, k.clone(), score));
                    }
                }
            }
            let Some((i, key, _)) = victim else {
                break; // nothing evictable remains
            };
            let mut shard = self.shards[i].lock();
            if let Some(e) = shard.entries.remove(&key) {
                shard.used_bytes -= e.size;
                shard.stats.evictions += 1;
                self.used_total.fetch_sub(e.size, Ordering::Relaxed);
            }
        }
    }

    /// Removes an entry (used when integrity verification rejects cached
    /// content).
    pub fn invalidate(&self, key: &str) -> bool {
        let mut shard = self.shard(key).lock();
        if let Some(e) = shard.entries.remove(key) {
            shard.used_bytes -= e.size;
            self.used_total.fetch_sub(e.size, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Drops every entry in every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.entries.clear();
            self.used_total
                .fetch_sub(shard.used_bytes, Ordering::Relaxed);
            shard.used_bytes = 0;
        }
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted to cached entries, across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes).sum()
    }

    /// Statistics aggregated across every shard.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s))
    }

    /// Per-shard statistics snapshot, in shard order.  The component-wise
    /// sum of these is exactly [`ProxyCache::stats`].
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.lock().stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::{Response, StatusCode};

    fn cacheable(body: &str, max_age: u64) -> Response {
        Response::ok("text/html", body).with_header("Cache-Control", &format!("max-age={max_age}"))
    }

    #[test]
    fn hit_after_put_miss_after_expiry() {
        let cache = ProxyCache::with_defaults();
        let resp = cacheable("home page", 300);
        assert!(cache.put("http://g.com/", &Method::Get, &resp, 100));
        assert!(cache.get("http://g.com/", 150).is_some());
        assert!(cache.get("http://g.com/", 500).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncacheable_responses_are_not_stored() {
        let cache = ProxyCache::with_defaults();
        let private = Response::ok("text/html", "x").with_header("Cache-Control", "private");
        assert!(!cache.put("http://a.com/", &Method::Get, &private, 0));
        let post_target = cacheable("y", 100);
        assert!(!cache.put("http://a.com/post", &Method::Post, &post_target, 0));
        let error = Response::error(StatusCode::SERVICE_UNAVAILABLE);
        assert!(!cache.put("http://a.com/busy", &Method::Get, &error, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn heuristic_lifetime_applies_without_explicit_expiry() {
        let cache = ProxyCache::new(1 << 20, Duration::from_secs(60));
        let resp = Response::ok("text/html", "implicit");
        assert!(cache.put("http://a.com/", &Method::Get, &resp, 0));
        assert!(cache.get("http://a.com/", 30).is_some());
        assert!(cache.get("http://a.com/", 61).is_none());
        // With a zero heuristic nothing is stored.
        let strict = ProxyCache::new(1 << 20, Duration::ZERO);
        assert!(!strict.put("http://a.com/", &Method::Get, &resp, 0));
    }

    #[test]
    fn eviction_keeps_usage_within_capacity() {
        let cache = ProxyCache::new(4096, Duration::from_secs(60));
        assert_eq!(cache.shard_count(), 1, "small caches stay single-shard");
        for i in 0..10 {
            let resp = cacheable(&"x".repeat(700), 1000);
            cache.put(&format!("http://a.com/{i}"), &Method::Get, &resp, i);
        }
        assert!(cache.used_bytes() <= 4096);
        assert!(cache.len() < 10);
        assert!(cache.stats().evictions > 0);
        // The most recently inserted entry survives.
        assert!(cache.get("http://a.com/9", 10).is_some());
    }

    #[test]
    fn oversized_objects_are_refused() {
        let cache = ProxyCache::new(1024, Duration::from_secs(60));
        let big = cacheable(&"x".repeat(10_000), 1000);
        assert!(!cache.put("http://a.com/big", &Method::Get, &big, 0));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn replacing_an_entry_updates_accounting() {
        let cache = ProxyCache::new(1 << 20, Duration::from_secs(60));
        let small = cacheable("small", 100);
        let large = cacheable(&"L".repeat(1000), 100);
        cache.put("http://a.com/", &Method::Get, &large, 0);
        let used_large = cache.used_bytes();
        cache.put("http://a.com/", &Method::Get, &small, 1);
        assert!(cache.used_bytes() < used_large);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = ProxyCache::with_defaults();
        cache.put("http://a.com/", &Method::Get, &cacheable("x", 100), 0);
        assert!(cache.invalidate("http://a.com/"));
        assert!(!cache.invalidate("http://a.com/"));
        cache.put("http://a.com/", &Method::Get, &cacheable("x", 100), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn auto_shard_count_scales_with_capacity() {
        assert_eq!(ProxyCache::new(4096, Duration::ZERO).shard_count(), 1);
        assert_eq!(ProxyCache::new(1 << 22, Duration::ZERO).shard_count(), 4);
        assert_eq!(ProxyCache::with_defaults().shard_count(), 16);
        assert_eq!(
            ProxyCache::with_shards(1, Duration::ZERO, 0).shard_count(),
            1,
            "explicit shard counts are clamped to at least one"
        );
    }

    #[test]
    fn keys_spread_across_shards_and_stats_aggregate() {
        let cache = ProxyCache::with_shards(64 << 20, Duration::from_secs(60), 8);
        for i in 0..64 {
            let key = format!("http://site{i}.example/page");
            assert!(cache.put(&key, &Method::Get, &cacheable("body", 600), 0));
            assert!(cache.get(&key, 1).is_some());
            assert!(cache.get(&format!("{key}?absent"), 1).is_none());
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 8);
        assert!(
            per_shard.iter().filter(|s| s.inserts > 0).count() > 1,
            "64 distinct keys must not all land in one shard"
        );
        let total = cache.stats();
        assert_eq!(total.hits, 64);
        assert_eq!(total.misses, 64);
        assert_eq!(total.inserts, 64);
        assert_eq!(
            per_shard
                .iter()
                .fold(CacheStats::default(), |a, s| a.merge(s)),
            total
        );
    }

    #[test]
    fn objects_larger_than_a_shard_budget_are_still_cacheable() {
        // 8 shards x 8 KiB: a 20 KiB object exceeds any shard's budget but
        // not the total capacity, so it must still be admitted (sharding
        // must not shrink the largest cacheable object).
        let cache = ProxyCache::with_shards(64 * 1024, Duration::from_secs(60), 8);
        let big = cacheable(&"B".repeat(20 * 1024), 600);
        assert!(cache.put("http://a.example/big", &Method::Get, &big, 0));
        assert!(cache.get("http://a.example/big", 1).is_some());
        // It evicted whatever shared its shard and lives there alone; other
        // shards are untouched and anything beyond total capacity is still
        // refused.
        let too_big = cacheable(&"B".repeat(70 * 1024), 600);
        assert!(!cache.put("http://a.example/huge", &Method::Get, &too_big, 0));
    }

    #[test]
    fn global_budget_holds_even_with_oversize_entries_in_many_shards() {
        // 8 shards x 8 KiB.  Six distinct ~20 KiB objects each exceed any
        // shard's budget; without global enforcement they would accumulate
        // to ~120 KiB against the 64 KiB capacity.
        let capacity = 64 * 1024;
        let cache = ProxyCache::with_shards(capacity, Duration::from_secs(60), 8);
        for i in 0..6 {
            let big = cacheable(&"G".repeat(20 * 1024), 600);
            assert!(cache.put(
                &format!("http://site{i}.example/big"),
                &Method::Get,
                &big,
                i
            ));
            assert!(
                cache.used_bytes() <= capacity,
                "global budget violated after insert {i}: {} > {capacity}",
                cache.used_bytes()
            );
        }
        assert!(cache.stats().evictions > 0);
        // The most recent insert always survives its own sweep.
        assert!(cache.get("http://site5.example/big", 10).is_some());
    }

    #[test]
    fn shard_byte_budgets_are_enforced_independently() {
        // 8 shards x 8 KiB each: flooding one site's URL space must evict
        // within shards without ever exceeding any shard's budget.
        let cache = ProxyCache::with_shards(64 * 1024, Duration::from_secs(60), 8);
        for i in 0..200 {
            let resp = cacheable(&"y".repeat(1500), 600);
            cache.put(&format!("http://a.example/{i}"), &Method::Get, &resp, i);
        }
        assert!(cache.used_bytes() <= 64 * 1024);
        assert!(cache.stats().evictions > 0);
    }
}
