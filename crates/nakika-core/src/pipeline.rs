//! The scripting pipeline: stage compilation, the compiled-stage cache, and
//! the `EXECUTE-PIPELINE` algorithm of the paper's Figure 4.
//!
//! Each stage is a script named by a URL.  Loading a stage fetches the script
//! (through ordinary HTTP caching), parses it, executes it once to register
//! its policy objects, and compiles the registered predicates into a decision
//! tree.  Compiled stages live in a dedicated in-memory cache, and the fact
//! that a site publishes *no* `nakika.js` is negatively cached, both exactly
//! as in the paper's implementation (§4).
//!
//! Executing a pipeline interleaves schedule computation with `onRequest`
//! execution (so redirections affect later matching), lets any `onRequest`
//! short-circuit by generating a response, fetches the original resource when
//! nothing did, and then runs the `onResponse` handlers in reverse order.

use crate::policy::{DecisionTree, Matcher, Policy, PolicySet};
use crate::programs::{ProgramCache, ScriptEngine};
use crate::vocab::{self, Exchange, VocabHooks};
use nakika_http::{Request, Response, StatusCode};
use nakika_script::{
    stdlib, CompiledProgram, Context, ContextPool, ResourceMeter, ScriptError, Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Well-known URL of the client-side administrative control script.
pub const CLIENT_WALL_URL: &str = "http://nakika.net/clientwall.js";
/// Well-known URL of the server-side administrative control script.
pub const SERVER_WALL_URL: &str = "http://nakika.net/serverwall.js";

/// A stage script compiled and ready for matching.
pub struct CompiledStage {
    /// The script's URL.
    pub url: String,
    /// Decision tree over the stage's registered policies.
    pub matcher: Arc<DecisionTree>,
    /// The registered policies (kept for introspection and statistics).
    pub policies: PolicySet,
    /// The load-time scripting context; handler closures captured its global
    /// scope, so per-request vocabularies are re-bound into it before a
    /// handler runs.
    load_ctx: Context,
    /// The stage script's bytecode; handler closures resolve their function
    /// literals against it when the VM engine executes them.
    program: Arc<CompiledProgram>,
    /// Which engine runs this stage's handlers.
    engine: ScriptEngine,
    /// Serialises handler execution within this stage (one pipeline at a time
    /// per stage, mirroring the per-pipeline process isolation of the paper's
    /// prototype).
    exec_lock: Mutex<()>,
}

impl CompiledStage {
    /// Compiles a stage from script source with a private program cache and
    /// the default engine — the convenience entry used by tests and ad-hoc
    /// loaders.  Nodes use [`CompiledStage::compile_with`] so all stages
    /// share one hash-keyed program cache.
    pub fn compile(
        url: &str,
        source: &str,
        hooks: &VocabHooks,
    ) -> Result<CompiledStage, ScriptError> {
        CompiledStage::compile_with(url, source, hooks, &ProgramCache::new(), ScriptEngine::Vm)
    }

    /// Compiles a stage from script source.  The script is parsed and
    /// lowered through `programs` (so an unchanged script costs one cache
    /// hit, not a recompile), then runs once via `engine` — in a sandboxed
    /// context with a throwaway exchange — to register its policies.
    pub fn compile_with(
        url: &str,
        source: &str,
        hooks: &VocabHooks,
        programs: &ProgramCache,
        engine: ScriptEngine,
    ) -> Result<CompiledStage, ScriptError> {
        let ctx = Context::new();
        stdlib::install(&ctx);
        let load_exchange = vocab::new_exchange(Request::get(url), 0);
        vocab::install(&ctx, &load_exchange, hooks);
        let script = programs.get_or_compile(source)?;
        engine.run(&ctx, &script)?;
        let mut set = PolicySet::new();
        for policy in std::mem::take(&mut load_exchange.lock().registered) {
            set.push(policy);
        }
        let matcher = Arc::new(set.compile());
        Ok(CompiledStage {
            url: url.to_string(),
            matcher,
            policies: set,
            load_ctx: ctx,
            program: script.compiled.clone(),
            engine,
            exec_lock: Mutex::new(()),
        })
    }

    /// FIND-CLOSEST-MATCH for this stage.
    pub fn find_closest_match(&self, request: &Request) -> Option<Arc<Policy>> {
        self.matcher.find_closest_match(request)
    }

    /// Runs one event handler of this stage against the exchange.
    ///
    /// `accounting` supplies the fuel/memory limits and the per-site meter the
    /// resource manager observes.
    fn run_handler(
        &self,
        handler: &Value,
        exchange: &Exchange,
        hooks: &VocabHooks,
        accounting: &Context,
    ) -> Result<Value, ScriptError> {
        let _guard = self.exec_lock.lock();
        // Re-bind the request-specific vocabularies into the scope the
        // handler closures captured at load time.
        vocab::install(&self.load_ctx, exchange, hooks);
        self.engine
            .call(accounting, &self.program, handler, &Value::Undefined, &[])
    }
}

/// An entry of the compiled-stage cache.
enum StageEntry {
    /// A compiled stage, fresh until the given time.
    Compiled(Arc<CompiledStage>, u64),
    /// Negative entry: the URL does not serve a script (e.g. a site without
    /// `nakika.js`), fresh until the given time.
    Absent(u64),
}

/// The dedicated in-memory cache of compiled stages / decision trees.
#[derive(Default)]
pub struct StageCache {
    entries: Mutex<HashMap<String, StageEntry>>,
    /// (hits, misses) counters for the evaluation.
    counters: Mutex<(u64, u64)>,
}

/// Result of a stage-cache lookup.
pub enum StageLookup {
    /// A fresh compiled stage.
    Hit(Arc<CompiledStage>),
    /// A fresh negative entry.
    KnownAbsent,
    /// Nothing fresh is cached.
    Miss,
}

impl StageCache {
    /// Creates an empty cache.
    pub fn new() -> StageCache {
        StageCache::default()
    }

    /// Looks up a compiled stage.
    pub fn get(&self, url: &str, now: u64) -> StageLookup {
        let entries = self.entries.lock();
        let result = match entries.get(url) {
            Some(StageEntry::Compiled(stage, fresh_until)) if *fresh_until > now => {
                StageLookup::Hit(stage.clone())
            }
            Some(StageEntry::Absent(fresh_until)) if *fresh_until > now => StageLookup::KnownAbsent,
            _ => StageLookup::Miss,
        };
        drop(entries);
        let mut counters = self.counters.lock();
        match result {
            StageLookup::Miss => counters.1 += 1,
            _ => counters.0 += 1,
        }
        result
    }

    /// Non-counting lookup: like [`StageCache::get`] but leaves the
    /// hit/miss counters untouched.  `dispatch_hint` probes the cache with
    /// this so classifying a request never skews the statistics the
    /// evaluation reads.
    pub fn probe(&self, url: &str, now: u64) -> StageLookup {
        let entries = self.entries.lock();
        match entries.get(url) {
            Some(StageEntry::Compiled(stage, fresh_until)) if *fresh_until > now => {
                StageLookup::Hit(stage.clone())
            }
            Some(StageEntry::Absent(fresh_until)) if *fresh_until > now => StageLookup::KnownAbsent,
            _ => StageLookup::Miss,
        }
    }

    /// Inserts a compiled stage valid until `fresh_until`.
    pub fn put(&self, url: &str, stage: Arc<CompiledStage>, fresh_until: u64) {
        self.entries
            .lock()
            .insert(url.to_string(), StageEntry::Compiled(stage, fresh_until));
    }

    /// Records that `url` serves no script, valid until `fresh_until`
    /// (avoiding repeated checks for `nakika.js`).
    pub fn put_absent(&self, url: &str, fresh_until: u64) {
        self.entries
            .lock()
            .insert(url.to_string(), StageEntry::Absent(fresh_until));
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        *self.counters.lock()
    }

    /// Number of cached entries (positive and negative).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a stage script is obtained by URL: a fresh compiled stage, a cached
/// one, or nothing (the stage is skipped, e.g. a site without `nakika.js`).
pub trait StageLoader: Send + Sync {
    /// Loads (or retrieves from cache) the compiled stage for `url`.
    fn load(&self, url: &str, now: u64) -> Option<Arc<CompiledStage>>;
}

/// Outcome of executing a pipeline.
pub struct PipelineOutcome {
    /// The response to return to the client.
    pub response: Response,
    /// True if an `onRequest` handler produced the response (no origin fetch).
    pub generated_by_script: bool,
    /// True if the request was fetched from the origin (or peer) rather than
    /// produced by a script.
    pub fetched: bool,
    /// The request in its final (possibly rewritten) form.
    pub final_request: Request,
    /// Number of stages whose handlers actually executed.
    pub stages_executed: usize,
    /// Errors raised by handlers (the pipeline continues past script errors,
    /// but reports them).
    pub script_errors: Vec<ScriptError>,
}

/// The pipeline executor.
pub struct PipelineRunner {
    /// Scripting-context pool for per-request accounting contexts.
    pub pool: Arc<ContextPool>,
    /// Fuel limit per handler execution.
    pub fuel_limit: u64,
    /// Memory cap per handler execution.
    pub memory_limit: usize,
}

impl Default for PipelineRunner {
    fn default() -> Self {
        PipelineRunner {
            pool: Arc::new(ContextPool::new(32)),
            fuel_limit: nakika_script::context::DEFAULT_FUEL,
            memory_limit: nakika_script::context::DEFAULT_MEMORY_LIMIT,
        }
    }
}

impl PipelineRunner {
    /// Executes the scripting pipeline for `request` (Figure 4).
    ///
    /// * `loader` resolves stage URLs to compiled stages;
    /// * `site_stage_url` is the site-specific script URL (`nakika.js`);
    /// * `fetch_resource` obtains the original resource when no handler
    ///   generates a response;
    /// * `hooks` are the vocabularies' bindings to node services;
    /// * `meter` is the per-site resource meter for this pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &self,
        request: Request,
        now: u64,
        loader: &dyn StageLoader,
        site_stage_url: &str,
        client_wall_url: &str,
        server_wall_url: &str,
        fetch_resource: &dyn Fn(&Request) -> Response,
        hooks: &VocabHooks,
        meter: ResourceMeter,
    ) -> PipelineOutcome {
        let exchange = vocab::new_exchange(request, now);
        let mut accounting = self.pool.acquire();
        accounting.meter = meter;
        accounting.fuel_limit = self.fuel_limit;
        accounting.memory_limit = self.memory_limit;

        // forward stack: POP order is client wall, site stage, server wall.
        let mut forward: Vec<String> = vec![
            server_wall_url.to_string(),
            site_stage_url.to_string(),
            client_wall_url.to_string(),
        ];
        let mut backward: Vec<(Arc<CompiledStage>, Arc<Policy>)> = Vec::new();
        let mut stages_executed = 0usize;
        let mut script_errors = Vec::new();
        let mut scheduled = 0usize;

        // Schedule stages and execute onRequest handlers.
        while let Some(stage_url) = forward.pop() {
            // Bound runaway dynamic scheduling (a misbehaving script could
            // otherwise schedule stages forever).
            scheduled += 1;
            if scheduled > 64 {
                break;
            }
            let Some(stage) = loader.load(&stage_url, now) else {
                continue;
            };
            let request_snapshot = exchange.lock().request.clone();
            let Some(policy) = stage.find_closest_match(&request_snapshot) else {
                continue;
            };
            stages_executed += 1;
            if let Some(handler) = &policy.on_request {
                match stage.run_handler(handler, &exchange, hooks, &accounting) {
                    Ok(_) => {}
                    Err(e) => script_errors.push(e),
                }
            }
            backward.push((stage.clone(), policy.clone()));
            // A generated response reverses direction immediately.
            if exchange.lock().generated.is_some() {
                break;
            }
            // Dynamically scheduled stages run next, before already scheduled
            // ones (PREPEND).
            for next in policy.next_stages.iter().rev() {
                forward.push(next.clone());
            }
        }

        // Obtain the response: generated by a script, or fetched.
        let generated_by_script;
        let fetched;
        {
            let mut ex = exchange.lock();
            if let Some(generated) = ex.generated.take() {
                ex.response = Some(generated);
                generated_by_script = true;
                fetched = false;
            } else {
                let request_snapshot = ex.request.clone();
                drop(ex);
                let response = fetch_resource(&request_snapshot);
                exchange.lock().response = Some(response);
                generated_by_script = false;
                fetched = true;
            }
        }

        // Execute onResponse handlers in reverse order.
        while let Some((stage, policy)) = backward.pop() {
            if let Some(handler) = &policy.on_response {
                match stage.run_handler(handler, &exchange, hooks, &accounting) {
                    Ok(_) => {}
                    Err(e) => script_errors.push(e),
                }
                exchange.lock().commit_output();
            }
        }

        self.pool.release(accounting);

        let mut ex = exchange.lock();
        let response = ex
            .response
            .take()
            .unwrap_or_else(|| Response::error(StatusCode::INTERNAL_SERVER_ERROR));
        PipelineOutcome {
            response,
            generated_by_script,
            fetched,
            final_request: ex.request.clone(),
            stages_executed,
            script_errors,
        }
    }
}

/// A [`StageLoader`] backed by a map of pre-compiled stages — used by tests
/// and by configurations that do not fetch scripts over HTTP.
#[derive(Default)]
pub struct StaticStageLoader {
    stages: HashMap<String, Arc<CompiledStage>>,
}

impl StaticStageLoader {
    /// Creates an empty loader.
    pub fn new() -> StaticStageLoader {
        StaticStageLoader::default()
    }

    /// Compiles `source` and registers it under `url`.
    pub fn add(&mut self, url: &str, source: &str) -> Result<(), ScriptError> {
        let stage = CompiledStage::compile(url, source, &VocabHooks::default())?;
        self.stages.insert(url.to_string(), Arc::new(stage));
        Ok(())
    }

    /// Registers an already compiled stage.
    pub fn add_compiled(&mut self, stage: CompiledStage) {
        self.stages.insert(stage.url.clone(), Arc::new(stage));
    }
}

impl StageLoader for StaticStageLoader {
    fn load(&self, url: &str, _now: u64) -> Option<Arc<CompiledStage>> {
        self.stages.get(url).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::Method;

    const EMPTY_WALL: &str = r#"
        p = new Policy();
        p.onRequest = function() { };
        p.onResponse = function() { };
        p.register();
    "#;

    fn runner() -> PipelineRunner {
        PipelineRunner::default()
    }

    fn execute(
        loader: &StaticStageLoader,
        request: Request,
        site_stage: &str,
        fetch: &dyn Fn(&Request) -> Response,
    ) -> PipelineOutcome {
        runner().execute(
            request,
            100,
            loader,
            site_stage,
            CLIENT_WALL_URL,
            SERVER_WALL_URL,
            fetch,
            &VocabHooks::default(),
            ResourceMeter::new(),
        )
    }

    #[test]
    fn stage_compilation_registers_policies() {
        let stage = CompiledStage::compile(
            "http://a.com/nakika.js",
            r#"
            p = new Policy();
            p.url = ["a.com"];
            p.onResponse = function() { Response.setHeader('X-Seen', 'yes'); };
            p.register();
            q = new Policy();
            q.url = ["a.com/admin"];
            q.onRequest = function() { Request.terminate(403); };
            q.register();
            "#,
            &VocabHooks::default(),
        )
        .unwrap();
        assert_eq!(stage.policies.len(), 2);
        let m = stage
            .find_closest_match(&Request::get("http://a.com/admin/panel"))
            .unwrap();
        assert!(m.on_request.is_some());
        let m = stage
            .find_closest_match(&Request::get("http://a.com/page"))
            .unwrap();
        assert!(m.on_request.is_none());
    }

    #[test]
    fn stage_compilation_rejects_broken_scripts() {
        assert!(CompiledStage::compile("u", "var x = ;", &VocabHooks::default()).is_err());
        assert!(CompiledStage::compile("u", "undefinedCall();", &VocabHooks::default()).is_err());
    }

    #[test]
    fn stage_cache_hits_misses_and_negative_entries() {
        let cache = StageCache::new();
        assert!(matches!(
            cache.get("http://a.com/nakika.js", 10),
            StageLookup::Miss
        ));
        let stage =
            CompiledStage::compile("http://a.com/nakika.js", EMPTY_WALL, &VocabHooks::default())
                .unwrap();
        cache.put("http://a.com/nakika.js", Arc::new(stage), 100);
        assert!(matches!(
            cache.get("http://a.com/nakika.js", 50),
            StageLookup::Hit(_)
        ));
        assert!(matches!(
            cache.get("http://a.com/nakika.js", 150),
            StageLookup::Miss
        ));
        cache.put_absent("http://nosite.com/nakika.js", 100);
        assert!(matches!(
            cache.get("http://nosite.com/nakika.js", 50),
            StageLookup::KnownAbsent
        ));
        let (hits, misses) = cache.counters();
        assert_eq!(hits, 2);
        assert_eq!(misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pipeline_fetches_origin_when_no_script_matches() {
        let loader = StaticStageLoader::new();
        let outcome = execute(
            &loader,
            Request::get("http://plain.example/page"),
            "http://plain.example/nakika.js",
            &|_req| Response::ok("text/html", "origin content"),
        );
        assert!(outcome.fetched);
        assert!(!outcome.generated_by_script);
        assert_eq!(outcome.stages_executed, 0);
        assert_eq!(outcome.response.body.to_text(), "origin content");
    }

    #[test]
    fn on_request_can_short_circuit_with_an_error() {
        // Figure 5: block access to digital libraries from outside.
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                CLIENT_WALL_URL,
                r#"
                p = new Policy();
                p.url = [ "bmj.bmjjournals.com/cgi/reprint" ];
                p.onRequest = function() {
                    if (! System.isLocal(Request.clientIP)) {
                        Request.terminate(401);
                    }
                }
                p.register();
                "#,
            )
            .unwrap();
        let fetched = std::sync::atomic::AtomicBool::new(false);
        let outcome = execute(
            &loader,
            Request::get("http://bmj.bmjjournals.com/cgi/reprint/123"),
            "http://bmj.bmjjournals.com/nakika.js",
            &|_req| {
                fetched.store(true, std::sync::atomic::Ordering::SeqCst);
                Response::ok("text/html", "the article")
            },
        );
        assert!(outcome.generated_by_script);
        assert_eq!(outcome.response.status, StatusCode::UNAUTHORIZED);
        assert!(
            !fetched.load(std::sync::atomic::Ordering::SeqCst),
            "origin never contacted"
        );
    }

    #[test]
    fn on_response_handlers_run_in_reverse_order() {
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                CLIENT_WALL_URL,
                r#"
                p = new Policy();
                p.onResponse = function() {
                    Response.setHeader('X-Order', (Response.getHeader('X-Order') || '') + 'wall,');
                };
                p.register();
                "#,
            )
            .unwrap();
        loader
            .add(
                "http://site.example/nakika.js",
                r#"
                p = new Policy();
                p.onResponse = function() {
                    Response.setHeader('X-Order', (Response.getHeader('X-Order') || '') + 'site,');
                };
                p.register();
                "#,
            )
            .unwrap();
        let outcome = execute(
            &loader,
            Request::get("http://site.example/page"),
            "http://site.example/nakika.js",
            &|_req| Response::ok("text/html", "x"),
        );
        // The site stage ran onRequest after the wall, so its onResponse runs
        // first on the way back; the wall sees the response last.
        assert_eq!(outcome.response.headers.get("x-order"), Some("site,wall,"));
        assert_eq!(outcome.stages_executed, 2);
    }

    #[test]
    fn dynamically_scheduled_stages_run_before_remaining_ones() {
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                "http://site.example/nakika.js",
                r#"
                p = new Policy();
                p.nextStages = ["http://services.example/annotate.js"];
                p.onResponse = function() {
                    Response.write('site(' + new ByteArray(Response.body()).toString() + ')');
                };
                p.register();
                "#,
            )
            .unwrap();
        loader
            .add(
                "http://services.example/annotate.js",
                r#"
                p = new Policy();
                p.onResponse = function() {
                    Response.write('annotated(' + new ByteArray(Response.body()).toString() + ')');
                };
                p.register();
                "#,
            )
            .unwrap();
        let outcome = execute(
            &loader,
            Request::get("http://site.example/lecture"),
            "http://site.example/nakika.js",
            &|_req| Response::ok("text/html", "original"),
        );
        // onResponse order: annotation stage (scheduled later, runs later on
        // request side → earlier on response side)… then the site stage wraps.
        assert_eq!(outcome.response.body.to_text(), "site(annotated(original))");
        assert_eq!(outcome.stages_executed, 2);
    }

    #[test]
    fn request_rewriting_affects_later_stage_matching() {
        // A stage rewrites the URL; the site stage selected afterwards must
        // match the rewritten request (the algorithm interleaves scheduling
        // and onRequest execution for exactly this reason).
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                CLIENT_WALL_URL,
                r#"
                p = new Policy();
                p.url = ["alias.example"];
                p.onRequest = function() { Request.setUrl('http://real.example/data'); };
                p.register();
                "#,
            )
            .unwrap();
        loader
            .add(
                "http://real.example/nakika.js",
                r#"
                p = new Policy();
                p.url = ["real.example"];
                p.onResponse = function() { Response.setHeader('X-Real', 'yes'); };
                p.register();
                "#,
            )
            .unwrap();
        let captured = Mutex::new(String::new());
        let outcome = runner().execute(
            Request::get("http://alias.example/data"),
            100,
            &loader,
            // The node recomputes the site stage URL from the (possibly
            // rewritten) request; the test passes the rewritten site's URL to
            // model that.
            "http://real.example/nakika.js",
            CLIENT_WALL_URL,
            SERVER_WALL_URL,
            &|req: &Request| {
                *captured.lock() = req.uri.to_string();
                Response::ok("text/html", "data")
            },
            &VocabHooks::default(),
            ResourceMeter::new(),
        );
        assert_eq!(*captured.lock(), "http://real.example/data");
        assert_eq!(outcome.response.headers.get("x-real"), Some("yes"));
        assert_eq!(outcome.final_request.uri.host, "real.example");
    }

    #[test]
    fn handler_errors_do_not_abort_the_exchange() {
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                CLIENT_WALL_URL,
                r#"
                p = new Policy();
                p.onResponse = function() { callSomethingUndefined(); };
                p.register();
                "#,
            )
            .unwrap();
        let outcome = execute(
            &loader,
            Request::get("http://site.example/x"),
            "http://site.example/nakika.js",
            &|_req| Response::ok("text/html", "still served"),
        );
        assert_eq!(outcome.response.body.to_text(), "still served");
        assert_eq!(outcome.script_errors.len(), 1);
    }

    #[test]
    fn pipeline_reports_post_requests_to_handlers() {
        let mut loader = StaticStageLoader::new();
        loader
            .add(
                "http://forms.example/nakika.js",
                r#"
                p = new Policy();
                p.method = ["POST"];
                p.onRequest = function() { Request.respond('text/plain', 'accepted'); };
                p.register();
                "#,
            )
            .unwrap();
        let post = Request::new(Method::Post, "http://forms.example/submit".parse().unwrap())
            .with_body("payload");
        let outcome = execute(&loader, post, "http://forms.example/nakika.js", &|_req| {
            Response::error(StatusCode::NOT_FOUND)
        });
        assert!(outcome.generated_by_script);
        assert_eq!(outcome.response.body.to_text(), "accepted");
        // GET requests do not match the POST-only policy.
        let get = Request::get("http://forms.example/submit");
        let outcome = execute(&loader, get, "http://forms.example/nakika.js", &|_req| {
            Response::ok("text/plain", "form")
        });
        assert!(!outcome.generated_by_script);
    }
}
