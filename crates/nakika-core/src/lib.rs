//! The Na Kika edge-side computing network (Grimm et al., NSDI 2006).
//!
//! This crate is the paper's primary contribution rebuilt in Rust:
//!
//! * **Policy objects and predicate selection** ([`policy`]) — services and
//!   security policies are pairs of `onRequest` / `onResponse` event handlers
//!   attached to predicates over HTTP messages; for each pipeline stage the
//!   closest-matching pair is selected, with precedence URL > client address
//!   > method > headers, via a decision-tree matcher.
//! * **The scripting pipeline** ([`pipeline`]) — the `EXECUTE-PIPELINE`
//!   algorithm of Figure 4: client-side administrative control, site-specific
//!   processing, server-side administrative control, plus dynamically
//!   scheduled stages, with any `onRequest` handler able to short-circuit the
//!   pipeline by producing a response.
//! * **Vocabularies** ([`vocab`]) — the native-code libraries exposed to
//!   scripts as global objects: `Request`, `Response`, `System`, `Cache`,
//!   `Fetch`, `ImageTransformer`, `Xml`, `HardState`, `Log`, `Policy`.
//! * **Congestion-based resource control** ([`resource`]) — the `CONTROL`
//!   algorithm of Figure 6: track per-site consumption, throttle
//!   proportionally under congestion, terminate the largest contributor if
//!   congestion persists.
//! * **The proxy cache** ([`cache`]) — expiration-based caching of original
//!   and processed content, compiled-stage (decision-tree) caching, negative
//!   caching of absent `nakika.js` scripts, and cooperative lookups through
//!   the structured overlay.
//! * **Na Kika Pages** ([`pages`]) — the `<?nkp ... ?>` markup model layered
//!   on the event model.
//! * **Compiled programs** ([`programs`]) — the hash-keyed cache of NkScript
//!   programs lowered to bytecode (compile once, execute many) and the
//!   node's [`programs::ScriptEngine`] selector between the bytecode VM and
//!   the reference tree-walking interpreter.
//! * **The node façade** ([`node`]) — [`node::NaKikaNode`] wires the pieces
//!   into a single proxy that mediates one HTTP exchange at a time, in any of
//!   the configurations the paper's evaluation exercises (plain proxy, proxy
//!   + DHT, administrative control only, predicate benchmarks, full node).
//! * **The peer-fetch protocol** ([`peering`]) — the loop-prevention headers
//!   (`X-Nakika-Hops`, `X-Nakika-Via`) and replication marks a node stamps on
//!   requests it forwards to the consistent-hash owner of a missed key, so
//!   the cooperative network runs over real TCP without routing loops.
//! * **The service boundary** ([`service`], [`middleware`], [`builder`]) —
//!   [`service::HttpService`] is the single seam between transports and
//!   everything else: transports mint a [`service::RequestCtx`] from their
//!   [`service::Clock`] and call the stack a [`builder::NodeBuilder`]
//!   produced, optionally wrapped in [`middleware`] layers (access logging,
//!   admission, integrity verification, latency-aware redirection).
//!   Platform failures travel as typed [`service::NakikaError`]s so each
//!   transport decides its own status mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod gossip;
pub mod middleware;
pub mod node;
pub mod pages;
pub mod peering;
pub mod pipeline;
pub mod policy;
pub mod programs;
pub mod resource;
pub mod scripts;
pub mod service;
pub mod vocab;

pub use builder::{NodeBuilder, NodeHandle, NodeService};
pub use cache::{CacheStats, ProxyCache};
pub use gossip::GossipService;
pub use middleware::{
    AccessLogLayer, AdmissionLayer, IntegrityLayer, RateLimitLayer, RedirectLayer,
};
pub use node::{NaKikaNode, NodeConfig, NodeMode, OriginFetch};
pub use pipeline::{PipelineOutcome, PipelineRunner};
pub use policy::{Matcher, Policy, PolicySet};
pub use programs::{ProgramCache, ScriptEngine};
pub use resource::{ResourceKind, ResourceManager, ResourceManagerConfig, SiteUsage};
pub use service::{
    service_fn, Clock, CtxFactory, DispatchHint, HttpService, Layer, ManualClock, NakikaError,
    RequestCtx,
};
pub use vocab::Exchange;
