//! The service boundary between transports and everything else.
//!
//! The paper's central architectural claim is that one edge node runs
//! unchanged under Apache, the discrete-event simulator and plain unit tests
//! because the service logic is cleanly separated from transport.  This
//! module makes that seam explicit: every transport — the blocking TCP
//! servers in `nakika-server`, the simulator's net layer in `nakika-sim`,
//! and in-memory tests — drives the node through exactly one interface,
//! [`HttpService::call`], and supplies the ambient facts of the exchange
//! (who is asking, what time it is, which exchange this is) through a
//! [`RequestCtx`] minted from a [`Clock`].
//!
//! Failures the *platform* produces (admission rejections, unreachable
//! origins, integrity violations) travel as typed [`NakikaError`] values so
//! each transport decides its own status mapping; failures the *application*
//! produces (a wall script answering 401, an origin answering 404) remain
//! ordinary [`Response`]s.

use nakika_http::{HttpError, Request, Response, StatusCode};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of "now" in seconds.
///
/// Transports own time: `nakika-server` uses the wall clock, `nakika-sim`
/// uses virtual time, and tests use a [`ManualClock`] they advance by hand.
/// Node code never consults a clock directly — it reads the arrival time off
/// the [`RequestCtx`] a transport minted.
///
/// ```
/// use nakika_core::service::{Clock, ManualClock};
///
/// let clock = ManualClock::new(100);
/// assert_eq!(clock.now_secs(), 100);
/// clock.advance(20);
/// assert_eq!(clock.now_secs(), 120);
/// ```
pub trait Clock: Send + Sync {
    /// Current time in seconds (epoch chosen by the transport).
    fn now_secs(&self) -> u64;
}

/// A [`Clock`] set and advanced explicitly — the test transport.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A manual clock starting at `start_secs`.
    pub fn new(start_secs: u64) -> ManualClock {
        ManualClock(AtomicU64::new(start_secs))
    }

    /// Moves the clock to the absolute time `now_secs`.
    pub fn set(&self, now_secs: u64) {
        self.0.store(now_secs, Ordering::SeqCst);
    }

    /// Advances the clock by `delta_secs`.
    pub fn advance(&self, delta_secs: u64) {
        self.0.fetch_add(delta_secs, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_secs(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Per-exchange context a transport hands to the service stack: who is
/// asking, when the request arrived, and a transport-unique id for log
/// correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCtx {
    /// Address of the client that sent the request.  When this is specified
    /// and the [`Request`]'s own `client_ip` is not, the node fills the
    /// request in from here, so policy predicates see the transport's view.
    pub client_ip: IpAddr,
    /// Time the request arrived, read from the transport's [`Clock`].
    pub arrival_secs: u64,
    /// Identifier of this exchange, unique per [`CtxFactory`]; `0` for
    /// ad-hoc contexts made with [`RequestCtx::at`].
    pub request_id: u64,
}

impl RequestCtx {
    /// An ad-hoc context at `now_secs` from an unspecified client — the
    /// in-memory test transport.
    pub fn at(now_secs: u64) -> RequestCtx {
        RequestCtx {
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            arrival_secs: now_secs,
            request_id: 0,
        }
    }

    /// Builder-style helper setting the client address.
    pub fn with_client_ip(mut self, ip: IpAddr) -> RequestCtx {
        self.client_ip = ip;
        self
    }

    /// A context at `now_secs` for `request`, adopting its client address.
    pub fn for_request(now_secs: u64, request: &Request) -> RequestCtx {
        RequestCtx::at(now_secs).with_client_ip(request.client_ip)
    }
}

/// Mints [`RequestCtx`] values for a transport: reads arrival time off the
/// transport's [`Clock`] and numbers exchanges sequentially.
pub struct CtxFactory {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
}

impl CtxFactory {
    /// A factory over `clock`, numbering exchanges from 1.
    pub fn new(clock: Arc<dyn Clock>) -> CtxFactory {
        CtxFactory {
            clock,
            next_id: AtomicU64::new(1),
        }
    }

    /// Mints the context for one exchange from `client_ip`.
    pub fn make(&self, client_ip: IpAddr) -> RequestCtx {
        RequestCtx {
            client_ip,
            arrival_secs: self.clock.now_secs(),
            request_id: self.next_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The factory's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

/// Errors the Na Kika platform produces while mediating an exchange.
///
/// These replace the scattered `Response::error(...)` escapes: service code
/// states *what went wrong*, and the transport at the outer edge decides the
/// HTTP status mapping (the default mapping is [`NakikaError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NakikaError {
    /// The site is being throttled by congestion-based resource control.
    Throttled {
        /// Site whose pipelines are throttled.
        site: String,
    },
    /// The site's pipelines were terminated this control round.
    Terminated {
        /// Site whose pipelines were terminated.
        site: String,
    },
    /// The client exceeded its request-rate budget
    /// ([`RateLimitLayer`](crate::middleware::RateLimitLayer)); maps to
    /// 429 so well-behaved clients know to back off while throttled
    /// *sites* keep their distinct 503.
    RateLimited {
        /// The client that ran out of tokens.
        client: std::net::IpAddr,
    },
    /// An upstream fetch (origin server or peer node) failed.
    Upstream {
        /// URL of the fetch that failed.
        url: String,
        /// Human-readable reason (connect failure, read error, truncation).
        reason: String,
    },
    /// A response failed content-integrity verification (paper §6).
    Integrity {
        /// URL of the offending response.
        url: String,
        /// What the verifier objected to.
        reason: String,
    },
    /// The HTTP substrate rejected a message.
    Http(HttpError),
    /// An invariant was violated inside the node.
    Internal(String),
}

impl NakikaError {
    /// Short machine-readable kind, carried in the `X-Nakika-Error` header.
    pub fn kind(&self) -> &'static str {
        match self {
            NakikaError::Throttled { .. } => "throttled",
            NakikaError::Terminated { .. } => "terminated",
            NakikaError::RateLimited { .. } => "rate-limited",
            NakikaError::Upstream { .. } => "upstream",
            NakikaError::Integrity { .. } => "integrity",
            NakikaError::Http(_) => "http",
            NakikaError::Internal(_) => "internal",
        }
    }

    /// The default status mapping transports apply.
    pub fn status(&self) -> StatusCode {
        match self {
            NakikaError::Throttled { .. } | NakikaError::Terminated { .. } => {
                StatusCode::SERVICE_UNAVAILABLE
            }
            NakikaError::RateLimited { .. } => StatusCode::TOO_MANY_REQUESTS,
            NakikaError::Upstream { .. } | NakikaError::Integrity { .. } => StatusCode::BAD_GATEWAY,
            NakikaError::Http(_) => StatusCode::BAD_REQUEST,
            NakikaError::Internal(_) => StatusCode::INTERNAL_SERVER_ERROR,
        }
    }

    /// Renders the error as an HTTP response under the default mapping,
    /// with the reason in the body and an `X-Nakika-Error` kind header.
    pub fn to_response(&self) -> Response {
        let mut response = Response::error(self.status());
        response.headers.set("X-Nakika-Error", self.kind());
        response.set_body(format!("{self}\n"));
        response
    }
}

impl std::fmt::Display for NakikaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NakikaError::Throttled { site } => write!(f, "server busy: {site} is throttled"),
            NakikaError::Terminated { site } => {
                write!(f, "server busy: pipelines of {site} were terminated")
            }
            NakikaError::RateLimited { client } => {
                write!(f, "too many requests: {client} exceeded its rate budget")
            }
            NakikaError::Upstream { url, reason } => {
                write!(f, "upstream fetch of {url} failed: {reason}")
            }
            NakikaError::Integrity { url, reason } => {
                write!(f, "integrity verification of {url} failed: {reason}")
            }
            NakikaError::Http(e) => write!(f, "http error: {e}"),
            NakikaError::Internal(reason) => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for NakikaError {}

impl From<HttpError> for NakikaError {
    fn from(e: HttpError) -> NakikaError {
        NakikaError::Http(e)
    }
}

/// How a readiness-driven transport should schedule one service call.
///
/// An event-loop transport (the reactor in `nakika-server`) runs cheap
/// calls inline — a warm cache hit costs no thread hand-off — but a call
/// that may *block* (a cold origin fetch, a peer fetch, a scripted
/// pipeline that loads scripts) must run off the loop, or it stalls every
/// other connection on that reactor thread.  Services advertise which case
/// a request falls into through [`HttpService::dispatch_hint`].
///
/// The hint is a scheduling heuristic, not a contract about the outcome: a
/// wrongly-`MayBlock` call merely pays one hand-off, while a
/// wrongly-`Inline` call degrades the event loop for the call's duration.
/// Implementations must therefore only answer `Inline` when the call is
/// guaranteed free of blocking I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchHint {
    /// The call performs no blocking I/O and may run on an event-loop
    /// thread (a warm cache hit, an in-memory handler known to be pure).
    Inline,
    /// The call may wait on external I/O (or burn significant CPU) and
    /// must be offloaded by readiness-driven transports.
    MayBlock,
}

/// One upstream a readiness-driven transport may splice a cache miss from:
/// where to connect, what to write, and how to judge the outcome.
///
/// Attempts are tried in order; connection failures, malformed responses
/// and deadline expiries advance to the next attempt until one delivers a
/// usable response head (see [`RelayPlan`]).
pub struct RelayAttempt {
    /// Host to connect to — an IP literal in real deployments (peers
    /// announce base URLs with literal addresses; origins in the bench and
    /// test rigs are loopback).  Transports that cannot resolve this
    /// without blocking fall back to the threaded fetch path.
    pub host: String,
    /// Port to connect to.
    pub port: u16,
    /// The serialized request to write upstream, `Connection: close` wire —
    /// spliced upstream sockets are single-exchange by construction.
    pub wire: Vec<u8>,
    /// Label naming the upstream in error messages ("peer http://…" or the
    /// origin URL).
    pub label: String,
    /// When true, a non-success response head is itself an attempt failure
    /// (peer fetches fall back to the origin on any error status); when
    /// false the head is forwarded as-is (origins speak for themselves).
    pub fallback_on_error_status: bool,
    /// Side effects of this attempt failing (peer-miss counters, negative
    /// gossip evidence).  Runs at failure time, never at plan time.
    pub on_fail: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// A side-effect-free description of how a transport can answer one cache
/// miss by relaying bytes straight from an upstream socket — the seam the
/// reactor's event-loop splice hangs off.
///
/// [`HttpService::relay_plan`] *describes* the fetch the service would
/// perform for a request; it must not perform any of it.  A transport that
/// adopts the plan runs [`on_start`](RelayPlan::on_start) once, connects
/// through the [`attempts`](RelayPlan::attempts) in order, passes the
/// winning response through [`finish`](RelayPlan::finish) (which applies
/// cache capture and counters), and renders total failure with
/// [`fail`](RelayPlan::fail).  A transport that does *not* adopt the plan
/// simply calls [`HttpService::call`] as usual — because planning had no
/// side effects, nothing is double-counted.
pub struct RelayPlan {
    /// Upstreams to try, in order: announced peer, consistent-hash owner,
    /// then the origin.
    pub attempts: Vec<RelayAttempt>,
    /// Side effects of the exchange starting (the request counter) —
    /// what [`HttpService::call`] would have done up front.
    pub on_start: Arc<dyn Fn() + Send + Sync>,
    /// Transforms the successful upstream response exactly as the in-call
    /// fetch path would: hit counters keyed by the winning attempt's index,
    /// cache capture (the streaming tee), access logging.
    pub finish: Arc<dyn Fn(Response, usize) -> Response + Send + Sync>,
    /// Renders the client-facing error response after every attempt failed
    /// before delivering a head.
    pub fail: Arc<dyn Fn(&str) -> Response + Send + Sync>,
}

/// The single boundary between transports and everything else: one HTTP
/// exchange in, one HTTP exchange (or platform error) out.
///
/// ```
/// use nakika_core::service::{service_fn, HttpService, RequestCtx};
/// use nakika_http::{Request, Response};
///
/// let echo = service_fn(|req: Request, _ctx: &RequestCtx| {
///     Ok(Response::ok("text/plain", req.uri.path.clone()))
/// });
/// let resp = echo.call(Request::get("http://a.example/hello"), &RequestCtx::at(0)).unwrap();
/// assert_eq!(resp.body.to_text(), "/hello");
/// ```
pub trait HttpService: Send + Sync {
    /// Mediates one exchange described by `req` under the ambient facts in
    /// `ctx`.
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError>;

    /// Classifies the upcoming [`call`](HttpService::call) for `req` so a
    /// readiness-driven transport can decide where to run it (see
    /// [`DispatchHint`]).  The default is conservatively
    /// [`DispatchHint::MayBlock`]: a service that cannot prove its call
    /// free of blocking I/O must not claim the event loop.  The node stack
    /// overrides this with a warm-cache probe so cache hits stay on the
    /// inline fast path.
    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        let _ = (req, ctx);
        DispatchHint::MayBlock
    }

    /// Describes, without side effects, how a transport could answer `req`
    /// by splicing bytes from an upstream socket it drives itself (see
    /// [`RelayPlan`]).  `None` — the default — means the transport must
    /// run [`call`](HttpService::call) instead: the service cannot express
    /// this exchange as a plain relay (scripted pipelines, middleware
    /// stacks, warm cache hits, non-idempotent methods).
    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        let _ = (req, ctx);
        None
    }
}

impl HttpService for Arc<dyn HttpService> {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        (**self).call(req, ctx)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        (**self).dispatch_hint(req, ctx)
    }

    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        (**self).relay_plan(req, ctx)
    }
}

/// An [`HttpService`] built from a closure.
pub struct ServiceFn<F>(pub F);

impl<F> HttpService for ServiceFn<F>
where
    F: Fn(Request, &RequestCtx) -> Result<Response, NakikaError> + Send + Sync,
{
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        (self.0)(req, ctx)
    }
}

/// Wraps a closure into an `Arc<dyn HttpService>` — the idiomatic way to
/// stand up origin servers in examples and tests.
pub fn service_fn<F>(f: F) -> Arc<dyn HttpService>
where
    F: Fn(Request, &RequestCtx) -> Result<Response, NakikaError> + Send + Sync + 'static,
{
    Arc::new(ServiceFn(f))
}

/// A middleware: wraps an inner [`HttpService`] into a new one.
///
/// Layers compose; [`layered`] and [`crate::builder::NodeBuilder::layer`]
/// apply a list of layers so the *first* layer listed becomes the
/// *outermost* wrapper, matching reading order:
///
/// ```
/// use nakika_core::middleware::AccessLogLayer;
/// use nakika_core::service::{layered, service_fn, HttpService, RequestCtx};
/// use nakika_http::{Request, Response};
/// use nakika_state::AccessLog;
/// use std::sync::Arc;
///
/// let log = Arc::new(AccessLog::new());
/// let base = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "hi")));
/// let stack = layered(base, vec![Box::new(AccessLogLayer::new(log.clone()))]);
/// stack.call(Request::get("http://a.example/"), &RequestCtx::at(7)).unwrap();
/// assert_eq!(log.pending("a.example"), 1);
/// ```
pub trait Layer: Send + Sync {
    /// Wraps `inner`, returning the layered service.
    fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService>;

    /// Whether this layer must see complete (buffered) response bodies.
    ///
    /// Since the v2 streaming redesign, responses may carry
    /// [`Body::Stream`](nakika_http::Body) bodies that are pulled through
    /// the transport one bounded chunk at a time.  Most layers — logging,
    /// admission, redirection — operate on heads and declared sizes and
    /// never touch body bytes, so they keep the stream intact.  A layer
    /// that must inspect the whole body (integrity verification hashes it)
    /// returns `true` here, and [`layered`] inserts a buffering point
    /// *beneath* it so the stream is materialized exactly when — and only
    /// when — such a layer demands it.
    fn requires_full_body(&self) -> bool {
        false
    }
}

/// Applies `layers` around `base`; the first layer in the list ends up
/// outermost.
///
/// Layers whose [`Layer::requires_full_body`] is true get a buffering
/// adapter inserted beneath them: the inner service's streamed response is
/// drained to a full body (surfacing mid-stream failures as
/// [`NakikaError::Upstream`]) before the demanding layer runs.  The
/// pipeline therefore buffers only when a layer asks, never by default.
///
/// The layered stack keeps `base`'s [`HttpService::dispatch_hint`]: layers
/// wrap through closures (which cannot forward the hint) but are assumed
/// non-blocking themselves — they log, reject, redirect, or hash bytes the
/// inner call already produced — so the question "may this call block?" is
/// answered by the service at the bottom of the stack.  Note the buffering
/// adapter respects this too: it only ever drains a *stream*, and streams
/// appear only on requests `base` already classified `MayBlock` (a warm
/// cache hit is a buffered body).
pub fn layered(base: Arc<dyn HttpService>, layers: Vec<Box<dyn Layer>>) -> Arc<dyn HttpService> {
    if layers.is_empty() {
        return base;
    }
    let classifier = base.clone();
    let stack = layers.into_iter().rev().fold(base, |inner, layer| {
        let inner = if layer.requires_full_body() {
            buffered_body(inner)
        } else {
            inner
        };
        layer.wrap(inner)
    });
    Arc::new(HintPreserving { stack, classifier })
}

/// The adapter [`layered`] wraps its result in: calls go through the full
/// layer stack, dispatch hints come from the base service (layers are
/// non-blocking, so the base owns the answer).
struct HintPreserving {
    stack: Arc<dyn HttpService>,
    classifier: Arc<dyn HttpService>,
}

impl HttpService for HintPreserving {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        self.stack.call(req, ctx)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        self.classifier.dispatch_hint(req, ctx)
    }

    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        // A layered stack must observe every exchange (logging, admission,
        // redirection), and a splice bypasses `call` entirely — so the
        // presence of any layer disables relay planning.  Hints can be
        // forwarded past layers; relays cannot.
        let _ = (req, ctx);
        None
    }
}

/// Wraps `inner` so that streamed response bodies are fully buffered before
/// they propagate outward; a mid-stream failure (for example a peer that
/// closed before `Content-Length` bytes arrived) surfaces as
/// [`NakikaError::Upstream`] instead of a silently truncated body.
pub fn buffered_body(inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
    service_fn(move |req: Request, ctx: &RequestCtx| {
        let url = req.uri.to_string();
        let mut response = inner.call(req, ctx)?;
        response.body.buffer().map_err(|e| NakikaError::Upstream {
            url,
            reason: format!("body stream failed: {e}"),
        })?;
        Ok(response)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_sets_and_advances() {
        let clock = ManualClock::new(5);
        assert_eq!(clock.now_secs(), 5);
        clock.advance(10);
        assert_eq!(clock.now_secs(), 15);
        clock.set(3);
        assert_eq!(clock.now_secs(), 3);
    }

    #[test]
    fn ctx_factory_stamps_time_and_numbers_requests() {
        let clock = Arc::new(ManualClock::new(100));
        let factory = CtxFactory::new(clock.clone());
        let a = factory.make("10.0.0.1".parse().unwrap());
        clock.advance(7);
        let b = factory.make("10.0.0.2".parse().unwrap());
        assert_eq!(a.arrival_secs, 100);
        assert_eq!(b.arrival_secs, 107);
        assert_eq!(a.request_id + 1, b.request_id);
    }

    #[test]
    fn error_status_mapping_is_stable() {
        let throttled = NakikaError::Throttled { site: "a".into() };
        assert_eq!(throttled.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(
            NakikaError::Terminated { site: "a".into() }.status(),
            StatusCode::SERVICE_UNAVAILABLE
        );
        let upstream = NakikaError::Upstream {
            url: "http://o.example/x".into(),
            reason: "connection refused".into(),
        };
        assert_eq!(upstream.status(), StatusCode::BAD_GATEWAY);
        let response = upstream.to_response();
        assert_eq!(response.status, StatusCode::BAD_GATEWAY);
        assert_eq!(response.headers.get("X-Nakika-Error"), Some("upstream"));
        assert!(response.body.to_text().contains("connection refused"));
    }

    #[test]
    fn full_body_layers_see_buffered_streams_others_see_the_stream() {
        use bytes::Bytes;
        use nakika_http::Body;

        struct Probe {
            wants_full: bool,
        }
        impl Layer for Probe {
            fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
                let wants_full = self.wants_full;
                service_fn(move |req, ctx| {
                    let resp = inner.call(req, ctx)?;
                    assert_eq!(
                        resp.body.is_stream(),
                        !wants_full,
                        "layer sees a stream exactly when it did not demand buffering"
                    );
                    Ok(resp)
                })
            }
            fn requires_full_body(&self) -> bool {
                self.wants_full
            }
        }

        for wants_full in [false, true] {
            let base = service_fn(|_req, _ctx| {
                let mut resp = Response::ok("text/plain", "");
                resp.body = Body::stream_from_iter(vec![Bytes::from_static(b"data")], Some(4));
                Ok(resp)
            });
            let stack = layered(base, vec![Box::new(Probe { wants_full })]);
            let resp = stack
                .call(Request::get("http://a.example/"), &RequestCtx::at(0))
                .unwrap();
            assert_eq!(resp.body.to_text(), "data");
        }
    }

    #[test]
    fn buffered_body_surfaces_stream_failures_as_upstream() {
        use bytes::Bytes;
        use nakika_http::{Body, ChunkSource};

        struct Failing(bool);
        impl ChunkSource for Failing {
            fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
                if self.0 {
                    return Err(std::io::Error::other("peer closed mid-body"));
                }
                self.0 = true;
                Ok(Some(Bytes::from_static(b"partial")))
            }
        }
        let base = service_fn(|_req, _ctx| {
            let mut resp = Response::ok("text/plain", "");
            resp.body = Body::stream(Failing(false), Some(100));
            Ok(resp)
        });
        let stack = buffered_body(base);
        match stack.call(Request::get("http://a.example/big"), &RequestCtx::at(0)) {
            Err(NakikaError::Upstream { url, reason }) => {
                assert_eq!(url, "http://a.example/big");
                assert!(reason.contains("peer closed"), "reason: {reason}");
            }
            other => panic!("expected an upstream error, got {other:?}"),
        }
    }

    #[test]
    fn service_fn_and_layering_compose() {
        struct Tag(&'static str);
        impl Layer for Tag {
            fn wrap(&self, inner: Arc<dyn HttpService>) -> Arc<dyn HttpService> {
                let name = self.0;
                service_fn(move |req, ctx| {
                    let resp = inner.call(req, ctx)?;
                    let trail = format!("{} {name}", resp.headers.get("X-Trail").unwrap_or(""));
                    Ok(resp.with_header("X-Trail", trail.trim()))
                })
            }
        }
        let base = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "ok")));
        let stack = layered(base, vec![Box::new(Tag("outer")), Box::new(Tag("inner"))]);
        let resp = stack
            .call(Request::get("http://a.example/"), &RequestCtx::at(0))
            .unwrap();
        // The inner tag runs first on the way out, the outer tag appends last.
        assert_eq!(resp.headers.get("X-Trail"), Some("inner outer"));
    }
}
