//! Na Kika Pages: the `<?nkp ... ?>` markup programming model (paper §3.1).
//!
//! Resources with the `nkp` extension or `text/nkp` MIME type are subject to
//! edge-side processing: text between `<?nkp` and `?>` is treated as script
//! and replaced by its output.  The paper implements this on top of the
//! event-based model with a ~60-line script; here the page is compiled to an
//! NkScript program that accumulates output in a buffer (`echo(...)` inside
//! code blocks, `<?nkp= expr ?>` for expression interpolation) and the node's
//! site stage runs that program when it sees an NKP response.

use nakika_script::ScriptError;

/// Name of the output-accumulation variable in compiled pages.
const OUT_VAR: &str = "__nkp_out";

/// Compiles an NKP page into NkScript source whose final expression is the
/// rendered page text.
pub fn compile_page(page: &str) -> String {
    let mut script = String::with_capacity(page.len() * 2);
    script.push_str(&format!("var {OUT_VAR} = '';\n"));
    script.push_str(&format!(
        "function echo(x) {{ {OUT_VAR} = {OUT_VAR} + x; }}\n"
    ));
    let mut rest = page;
    loop {
        match rest.find("<?nkp") {
            None => {
                if !rest.is_empty() {
                    script.push_str(&emit_literal(rest));
                }
                break;
            }
            Some(start) => {
                if start > 0 {
                    script.push_str(&emit_literal(&rest[..start]));
                }
                let after_tag = &rest[start + "<?nkp".len()..];
                let (code, remaining) = match after_tag.find("?>") {
                    Some(end) => (&after_tag[..end], &after_tag[end + 2..]),
                    None => (after_tag, ""),
                };
                if let Some(expr) = code.strip_prefix('=') {
                    script.push_str(&format!("echo({});\n", expr.trim()));
                } else {
                    script.push_str(code);
                    script.push('\n');
                }
                rest = remaining;
            }
        }
    }
    script.push_str(&format!("{OUT_VAR}\n"));
    script
}

fn emit_literal(text: &str) -> String {
    let escaped = text
        .replace('\\', "\\\\")
        .replace('\'', "\\'")
        .replace('\n', "\\n")
        .replace('\r', "\\r");
    format!("echo('{escaped}');\n")
}

/// Renders a page in a fresh sandboxed context with only the standard library
/// installed — a convenience for tests and tooling; the node renders pages in
/// request contexts with the full vocabularies available.
pub fn render_page(page: &str) -> Result<String, ScriptError> {
    let script = compile_page(page);
    Ok(nakika_script::eval(&script)?.to_display_string())
}

/// True if a resource should be treated as a Na Kika Page, judged from its
/// URL extension and/or content type (paper: the `nkp` extension or the
/// `text/nkp` MIME type).
pub fn is_nkp(extension: Option<&str>, content_type: Option<&str>) -> bool {
    extension
        .map(|e| e.eq_ignore_ascii_case("nkp"))
        .unwrap_or(false)
        || content_type
            .map(|c| c.eq_ignore_ascii_case("text/nkp"))
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pages_pass_through() {
        assert_eq!(
            render_page("<html><body>plain</body></html>").unwrap(),
            "<html><body>plain</body></html>"
        );
        assert_eq!(render_page("").unwrap(), "");
    }

    #[test]
    fn code_blocks_emit_via_echo() {
        let page = "<ul><?nkp for (var i = 1; i <= 3; i++) { echo('<li>' + i + '</li>'); } ?></ul>";
        assert_eq!(
            render_page(page).unwrap(),
            "<ul><li>1</li><li>2</li><li>3</li></ul>"
        );
    }

    #[test]
    fn expression_interpolation() {
        let page = "<p>2 + 2 = <?nkp= 2 + 2 ?></p>";
        assert_eq!(render_page(page).unwrap(), "<p>2 + 2 = 4</p>");
    }

    #[test]
    fn mixed_text_code_and_expressions() {
        let page = "A<?nkp var name = 'student'; ?>B<?nkp= name.toUpperCase() ?>C";
        assert_eq!(render_page(page).unwrap(), "ABSTUDENTC");
    }

    #[test]
    fn literals_with_quotes_and_newlines_survive() {
        let page = "line1\nit's \"quoted\"\n<?nkp= 1 ?>";
        assert_eq!(render_page(page).unwrap(), "line1\nit's \"quoted\"\n1");
    }

    #[test]
    fn unterminated_block_consumes_rest() {
        let page = "before<?nkp echo('x');";
        assert_eq!(render_page(page).unwrap(), "beforex");
    }

    #[test]
    fn script_errors_propagate() {
        assert!(render_page("<?nkp this is not valid script ?>").is_err());
    }

    #[test]
    fn nkp_detection() {
        assert!(is_nkp(Some("nkp"), None));
        assert!(is_nkp(Some("NKP"), None));
        assert!(is_nkp(None, Some("text/nkp")));
        assert!(!is_nkp(Some("html"), Some("text/html")));
        assert!(!is_nkp(None, None));
    }
}
