//! Policy objects and predicate-based event-handler selection (paper §3.1).
//!
//! A policy object associates a pair of `onRequest` / `onResponse` event
//! handlers with predicates over HTTP requests: lists of allowable resource
//! URLs (prefixes), client addresses (CIDR blocks or domain suffixes), HTTP
//! methods, and arbitrary headers (lightweight regular expressions).  Within
//! a list values are a disjunction; across properties a conjunction; a null
//! property is true.  When several policies of a stage match, the *closest*
//! match wins, with precedence given to resource URLs, then client
//! addresses, then methods, then headers.
//!
//! Two matchers are provided: a [`DecisionTree`] that mirrors the paper's
//! space-for-time structure (candidates are narrowed by the URL's host
//! components before scoring) and a [`LinearMatcher`] used as the ablation
//! baseline.

use nakika_http::pattern::{ClientPattern, Regex};
use nakika_http::{Method, Request};
use nakika_script::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A single policy: predicates plus event handlers.
#[derive(Clone)]
pub struct Policy {
    /// Allowable resource URL prefixes (`host[/path-prefix]`); empty = any.
    pub url: Vec<String>,
    /// Allowable client patterns (CIDR or domain suffix); empty = any.
    pub client: Vec<ClientPattern>,
    /// Allowable HTTP methods; empty = any.
    pub methods: Vec<Method>,
    /// Header predicates: `(header name, compiled pattern)`; all must match.
    pub headers: Vec<(String, Arc<Regex>)>,
    /// The `onRequest` handler (a script function value), if any.
    pub on_request: Option<Value>,
    /// The `onResponse` handler, if any.
    pub on_response: Option<Value>,
    /// URLs of additional pipeline stages to schedule after this stage.
    pub next_stages: Vec<String>,
    /// True when a handler of this policy might call a blocking vocabulary
    /// entry point (it mentions `Fetch` somewhere).  Computed once at
    /// registration by a conservative static analysis; see
    /// [`nakika_script::analysis::function_mentions_ident`].
    pub blocking_fetch: bool,
    /// True when the `onRequest` handler unconditionally generates a
    /// response (`Request.respond` / `Request.terminate` as a top-level
    /// statement), so a pipeline selecting it never reaches the origin.
    /// See [`nakika_script::analysis::function_always_calls`].
    pub always_generates: bool,
}

impl Policy {
    /// A policy with no predicates (matches everything) and no handlers.
    pub fn catch_all() -> Policy {
        Policy {
            url: Vec::new(),
            client: Vec::new(),
            methods: Vec::new(),
            headers: Vec::new(),
            on_request: None,
            on_response: None,
            next_stages: Vec::new(),
            blocking_fetch: false,
            always_generates: false,
        }
    }

    /// Evaluates the policy's predicates against a request.
    ///
    /// Returns `None` when a non-empty property fails to match; otherwise the
    /// match *specificity* used to pick the closest match.  The specificity
    /// encodes the paper's precedence: URL matches dominate client matches,
    /// which dominate method matches, which dominate header matches.  Within
    /// the URL dimension a longer matching prefix is more specific.
    pub fn matches(&self, request: &Request) -> Option<Specificity> {
        let mut spec = Specificity::default();

        if !self.url.is_empty() {
            let best = self
                .url
                .iter()
                .filter(|prefix| request.uri.matches_prefix(prefix))
                .map(|prefix| prefix.len())
                .max()?;
            spec.url = best as u32 + 1;
        }

        if !self.client.is_empty() {
            let domain = request.headers.get("x-client-domain").map(str::to_string);
            let best = self
                .client
                .iter()
                .filter(|p| p.matches(request.client_ip, domain.as_deref()))
                .map(|p| match p {
                    ClientPattern::Cidr(c) => c.prefix_len() as u32 + 1,
                    ClientPattern::Domain(d) => d.len() as u32 + 1,
                })
                .max()?;
            spec.client = best;
        }

        if !self.methods.is_empty() {
            if !self.methods.contains(&request.method) {
                return None;
            }
            spec.method = 1;
        }

        if !self.headers.is_empty() {
            for (name, pattern) in &self.headers {
                let value = request.headers.get(name)?;
                if !pattern.is_match(value) {
                    return None;
                }
            }
            spec.headers = self.headers.len() as u32;
        }

        Some(spec)
    }

    /// True if the policy carries no handlers and schedules nothing — a
    /// registration mistake worth reporting to script authors.
    pub fn is_inert(&self) -> bool {
        self.on_request.is_none() && self.on_response.is_none() && self.next_stages.is_empty()
    }
}

/// Match specificity, ordered by the paper's precedence rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Specificity {
    /// URL-prefix match length (+1), 0 when the policy has no URL predicate.
    pub url: u32,
    /// Client match strength, 0 when the policy has no client predicate.
    pub client: u32,
    /// 1 when a method predicate matched.
    pub method: u32,
    /// Number of matching header predicates.
    pub headers: u32,
}

impl PartialOrd for Specificity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Specificity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic by precedence: URL, then client, then method, then
        // headers.
        (self.url, self.client, self.method, self.headers).cmp(&(
            other.url,
            other.client,
            other.method,
            other.headers,
        ))
    }
}

/// The set of policies registered by one pipeline-stage script.
#[derive(Clone, Default)]
pub struct PolicySet {
    policies: Vec<Arc<Policy>>,
}

impl PolicySet {
    /// Creates an empty set.
    pub fn new() -> PolicySet {
        PolicySet::default()
    }

    /// Adds a policy (in registration order).
    pub fn push(&mut self, policy: Policy) {
        self.policies.push(Arc::new(policy));
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when no policies are registered.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// The registered policies.
    pub fn policies(&self) -> &[Arc<Policy>] {
        &self.policies
    }

    /// Compiles the set into the decision-tree matcher.
    pub fn compile(&self) -> DecisionTree {
        DecisionTree::build(self)
    }
}

/// Interface shared by the decision-tree matcher and the linear baseline.
pub trait Matcher: Send + Sync {
    /// Returns the closest-matching policy for a request, if any matches.
    fn find_closest_match(&self, request: &Request) -> Option<Arc<Policy>>;
    /// Number of policies indexed.
    fn len(&self) -> usize;
    /// True if no policies are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Linear scan over all policies — the ablation baseline the paper's decision
/// tree improves on.
pub struct LinearMatcher {
    policies: Vec<Arc<Policy>>,
}

impl LinearMatcher {
    /// Builds a linear matcher over a policy set.
    pub fn build(set: &PolicySet) -> LinearMatcher {
        LinearMatcher {
            policies: set.policies.clone(),
        }
    }
}

impl Matcher for LinearMatcher {
    fn find_closest_match(&self, request: &Request) -> Option<Arc<Policy>> {
        best_of(self.policies.iter(), request)
    }

    fn len(&self) -> usize {
        self.policies.len()
    }
}

/// The decision tree: policies are bucketed by the components of their URL
/// predicates' host names so that dynamic evaluation only scores the policies
/// that can possibly match the request's host (plus the host-agnostic ones).
///
/// The paper's implementation goes further (branching on path components,
/// client address and headers as well); bucketing on the host captures the
/// dominant fan-out in practice — a node hosts many sites, each registering
/// policies for its own URLs — and the measured effect (near-constant match
/// cost as the number of registered policies grows) is reproduced in the
/// ablation bench.
pub struct DecisionTree {
    /// host (lower-case, origin form) -> candidate policies.
    by_host: HashMap<String, Vec<Arc<Policy>>>,
    /// Policies with no URL predicate: candidates for every request.
    host_agnostic: Vec<Arc<Policy>>,
    total: usize,
}

impl DecisionTree {
    /// Builds the tree from a policy set.
    pub fn build(set: &PolicySet) -> DecisionTree {
        let mut by_host: HashMap<String, Vec<Arc<Policy>>> = HashMap::new();
        let mut host_agnostic = Vec::new();
        for policy in &set.policies {
            if policy.url.is_empty() {
                host_agnostic.push(policy.clone());
                continue;
            }
            for prefix in &policy.url {
                let host = prefix
                    .split('/')
                    .next()
                    .unwrap_or(prefix)
                    .to_ascii_lowercase();
                if host.is_empty() {
                    // A path-only predicate ("/api/motd") names no host, so
                    // it is a candidate for every request; Policy::matches
                    // still applies the path prefix.
                    host_agnostic.push(policy.clone());
                    break;
                }
                by_host.entry(host).or_default().push(policy.clone());
            }
        }
        DecisionTree {
            by_host,
            host_agnostic,
            total: set.policies.len(),
        }
    }

    /// Candidate policies for a request: those registered for any suffix of
    /// the request's host, plus the host-agnostic ones.
    fn candidates(&self, request: &Request) -> Vec<&Arc<Policy>> {
        let host = request.uri.to_origin().host;
        let mut out: Vec<&Arc<Policy>> = Vec::new();
        // Consider every domain suffix of the host ("a.b.c" -> "a.b.c",
        // "b.c", "c") because URL predicates may name a parent domain.
        let parts: Vec<&str> = host.split('.').collect();
        for start in 0..parts.len() {
            let suffix = parts[start..].join(".");
            if let Some(policies) = self.by_host.get(&suffix) {
                out.extend(policies.iter());
            }
        }
        out.extend(self.host_agnostic.iter());
        out
    }
}

impl Matcher for DecisionTree {
    fn find_closest_match(&self, request: &Request) -> Option<Arc<Policy>> {
        best_of(self.candidates(request).into_iter(), request)
    }

    fn len(&self) -> usize {
        self.total
    }
}

/// Scores candidates and returns the most specific match; ties go to the
/// policy registered first (stable registration order).
fn best_of<'a>(
    policies: impl Iterator<Item = &'a Arc<Policy>>,
    request: &Request,
) -> Option<Arc<Policy>> {
    let mut best: Option<(Specificity, &'a Arc<Policy>)> = None;
    for policy in policies {
        if let Some(spec) = policy.matches(request) {
            match &best {
                Some((best_spec, _)) if *best_spec >= spec => {}
                _ => best = Some((spec, policy)),
            }
        }
    }
    best.map(|(_, p)| p.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::pattern::ClientPattern;
    use std::net::IpAddr;

    fn policy_with_url(prefixes: &[&str]) -> Policy {
        Policy {
            url: prefixes.iter().map(|s| s.to_string()).collect(),
            ..Policy::catch_all()
        }
    }

    fn req(url: &str) -> Request {
        Request::get(url)
    }

    #[test]
    fn url_prefix_disjunction() {
        let p = policy_with_url(&["med.nyu.edu", "medschool.pitt.edu"]);
        assert!(p.matches(&req("http://med.nyu.edu/simm/1")).is_some());
        assert!(p.matches(&req("http://medschool.pitt.edu/x")).is_some());
        assert!(p.matches(&req("http://harvard.edu/x")).is_none());
    }

    #[test]
    fn properties_are_a_conjunction() {
        let mut p = policy_with_url(&["med.nyu.edu"]);
        p.client = vec![ClientPattern::parse("10.0.0.0/8").unwrap()];
        let mut r = req("http://med.nyu.edu/x");
        r.client_ip = "10.1.2.3".parse::<IpAddr>().unwrap();
        assert!(p.matches(&r).is_some());
        r.client_ip = "192.168.0.1".parse::<IpAddr>().unwrap();
        assert!(p.matches(&r).is_none(), "URL matches but client does not");
    }

    #[test]
    fn null_properties_are_true() {
        let p = Policy::catch_all();
        assert_eq!(
            p.matches(&req("http://anything.example/")),
            Some(Specificity::default())
        );
        assert!(p.is_inert());
    }

    #[test]
    fn method_and_header_predicates() {
        let mut p = Policy::catch_all();
        p.methods = vec![Method::Post];
        assert!(p.matches(&req("http://a.com/")).is_none());
        let mut post = Request::new(Method::Post, "http://a.com/".parse().unwrap());
        assert!(p.matches(&post).is_some());

        p.headers = vec![(
            "User-Agent".to_string(),
            Arc::new(Regex::new("Nokia").unwrap()),
        )];
        assert!(p.matches(&post).is_none(), "header absent");
        post.headers.set("User-Agent", "Nokia6600/1.0");
        assert!(p.matches(&post).is_some());
        post.headers.set("User-Agent", "Mozilla/5.0");
        assert!(p.matches(&post).is_none());
    }

    #[test]
    fn client_domain_matching_via_header() {
        let mut p = Policy::catch_all();
        p.client = vec![ClientPattern::parse("nyu.edu").unwrap()];
        let mut r = req("http://med.nyu.edu/x");
        assert!(p.matches(&r).is_none());
        r.headers.set("X-Client-Domain", "dialup.cs.nyu.edu");
        assert!(p.matches(&r).is_some());
    }

    #[test]
    fn precedence_url_over_client_over_method() {
        let url_only = Specificity {
            url: 10,
            ..Default::default()
        };
        let client_only = Specificity {
            client: 33,
            ..Default::default()
        };
        let method_only = Specificity {
            method: 1,
            headers: 5,
            ..Default::default()
        };
        assert!(url_only > client_only);
        assert!(client_only > method_only);
        let longer_url = Specificity {
            url: 20,
            ..Default::default()
        };
        assert!(longer_url > url_only);
    }

    #[test]
    fn closest_match_prefers_longer_url_prefix() {
        let mut set = PolicySet::new();
        let mut site_wide = policy_with_url(&["bmj.bmjjournals.com"]);
        site_wide.on_request = Some(Value::Number(1.0)); // marker
        let mut reprints = policy_with_url(&["bmj.bmjjournals.com/cgi/reprint"]);
        reprints.on_request = Some(Value::Number(2.0)); // marker
        set.push(site_wide);
        set.push(reprints);
        let tree = set.compile();
        let m = tree
            .find_closest_match(&req("http://bmj.bmjjournals.com/cgi/reprint/article1"))
            .unwrap();
        assert_eq!(m.on_request, Some(Value::Number(2.0)));
        let m = tree
            .find_closest_match(&req("http://bmj.bmjjournals.com/about"))
            .unwrap();
        assert_eq!(m.on_request, Some(Value::Number(1.0)));
    }

    #[test]
    fn path_only_predicates_reach_every_host_through_the_tree() {
        let mut set = PolicySet::new();
        let mut api = policy_with_url(&["/api/"]);
        api.on_request = Some(Value::Number(1.0)); // marker
        set.push(api);
        let mut generic = Policy::catch_all();
        generic.on_request = Some(Value::Number(2.0)); // marker
        set.push(generic);
        let tree = set.compile();
        let m = tree
            .find_closest_match(&req("http://any.example.org/api/motd"))
            .unwrap();
        assert_eq!(m.on_request, Some(Value::Number(1.0)));
        let m = tree
            .find_closest_match(&req("http://any.example.org/page.html"))
            .unwrap();
        assert_eq!(m.on_request, Some(Value::Number(2.0)));
    }

    #[test]
    fn tree_and_linear_matchers_agree() {
        let mut set = PolicySet::new();
        for i in 0..50 {
            let mut p = policy_with_url(&[&format!("site{i}.example.org")]);
            p.on_request = Some(Value::Number(i as f64));
            set.push(p);
        }
        let mut generic = Policy::catch_all();
        generic.on_response = Some(Value::Number(999.0));
        set.push(generic);

        let tree = set.compile();
        let linear = LinearMatcher::build(&set);
        assert_eq!(tree.len(), 51);
        for i in [0usize, 7, 49] {
            let r = req(&format!("http://site{i}.example.org/page"));
            let a = tree.find_closest_match(&r).unwrap();
            let b = linear.find_closest_match(&r).unwrap();
            assert_eq!(a.on_request, b.on_request);
            assert_eq!(a.on_request, Some(Value::Number(i as f64)));
        }
        // A host nobody registered falls through to the catch-all.
        let r = req("http://unregistered.example.net/");
        assert_eq!(
            tree.find_closest_match(&r).unwrap().on_response,
            Some(Value::Number(999.0))
        );
    }

    #[test]
    fn nakika_suffixed_requests_match_origin_policies() {
        let mut set = PolicySet::new();
        let mut p = policy_with_url(&["med.nyu.edu"]);
        p.on_request = Some(Value::Number(1.0));
        set.push(p);
        let tree = set.compile();
        assert!(tree
            .find_closest_match(&req("http://med.nyu.edu.nakika.net/simm/1"))
            .is_some());
    }

    #[test]
    fn registration_order_breaks_ties() {
        let mut set = PolicySet::new();
        let mut first = policy_with_url(&["a.com"]);
        first.on_request = Some(Value::Number(1.0));
        let mut second = policy_with_url(&["a.com"]);
        second.on_request = Some(Value::Number(2.0));
        set.push(first);
        set.push(second);
        let m = set
            .compile()
            .find_closest_match(&req("http://a.com/"))
            .unwrap();
        assert_eq!(m.on_request, Some(Value::Number(1.0)));
    }

    #[test]
    fn no_match_returns_none() {
        let mut set = PolicySet::new();
        set.push(policy_with_url(&["only.example.com"]));
        assert!(set
            .compile()
            .find_closest_match(&req("http://other.example.net/"))
            .is_none());
        assert!(PolicySet::new().compile().is_empty());
    }
}
