//! The gossip membership's wire surface and driver: how the SWIM-style
//! state machine in [`nakika_overlay::gossip`] talks to real peers.
//!
//! There is no dedicated gossip listener.  A probe is a plain HTTP exchange
//! on the node's existing front-end, sent through the node's own
//! [`OriginFetch::fetch_peer`] path — the same pooled keep-alive connections
//! that carry peer fetches carry the gossip:
//!
//! * **Exchange (direct ping)** — `GET /__nakika/gossip` carrying the
//!   prober's roster digest in the [`peering::GOSSIP_HEADER`] request
//!   header; the responder merges it and answers `200` with its own digest
//!   as the body.  Both sides converge a little on every exchange, so the
//!   failure-detector probes double as anti-entropy.
//! * **Indirect probe (ping-req)** — the same `GET` with
//!   [`peering::GOSSIP_PROBE_HEADER`] naming a third node's base URL.  The
//!   relay performs a direct exchange with the target on the requester's
//!   behalf and answers `200` (target alive) or `502` (target unreachable).
//!   Relayed exchanges never carry the probe header themselves, so the
//!   indirection is one level deep by construction.
//!
//! [`GossipService`] serves the endpoint (wrapped immediately around the
//! node, inside all middleware, so redirect/admission layers never touch
//! gossip traffic), and the builder's background worker drives
//! [`Membership::poll`] against it.  Roster events feed
//! [`apply_events`], which re-homes key ownership in the overlay.

use crate::node::OriginFetch;
use crate::peering;
use crate::service::{DispatchHint, HttpService, NakikaError, RelayPlan, RequestCtx};
use nakika_http::{Request, Response, StatusCode};
use nakika_overlay::{key_for, Location, Membership, MembershipEvent, Overlay};
use std::sync::Arc;

/// Applies roster events to the overlay: joins and recoveries enter the
/// consistent-hash ring under `key_for(name)` carrying the member's base
/// URL; a faulty verdict fails the node out, so ownership and successor
/// sets re-home to the survivors on the next lookup.
pub fn apply_events(overlay: &Overlay, events: &[MembershipEvent]) {
    for event in events {
        match event {
            MembershipEvent::Joined { name, addr } | MembershipEvent::Recovered { name, addr } => {
                overlay.join_with_addr(key_for(name), Location::new(0.0, 0.0), addr);
            }
            MembershipEvent::Failed { name } => {
                overlay.fail(key_for(name));
            }
        }
    }
}

fn gossip_url(addr: &str) -> String {
    format!("{}{}", addr.trim_end_matches('/'), peering::GOSSIP_PATH)
}

/// One direct gossip exchange with the node at `addr`: sends the local
/// digest, merges the peer's digest from the response body, and applies the
/// resulting roster events to `overlay`.  An error or non-success response
/// means the peer did not answer the probe.
pub fn gossip_exchange(
    membership: &Membership,
    overlay: &Overlay,
    origin: &Arc<dyn OriginFetch>,
    addr: &str,
) -> Result<(), NakikaError> {
    let request =
        Request::get(&gossip_url(addr)).with_header(peering::GOSSIP_HEADER, &membership.digest());
    let mut response = origin.fetch_peer(addr, &request)?;
    if !response.status.is_success() {
        return Err(NakikaError::Upstream {
            url: gossip_url(addr),
            reason: format!("gossip exchange answered {}", response.status),
        });
    }
    if response.body.buffer().is_err() {
        return Err(NakikaError::Upstream {
            url: gossip_url(addr),
            reason: "gossip digest stream failed".to_string(),
        });
    }
    let events = membership.merge_digest(&response.body.to_text());
    apply_events(overlay, &events);
    Ok(())
}

/// One indirect probe (SWIM's ping-req): asks the relay at `relay_addr` to
/// perform a direct exchange with `target_addr` on our behalf.  `Ok` means
/// the relay reached the target; the relay's digest (which now reflects the
/// target's) is merged either way the body arrives.
pub fn gossip_probe_via(
    membership: &Membership,
    overlay: &Overlay,
    origin: &Arc<dyn OriginFetch>,
    relay_addr: &str,
    target_addr: &str,
) -> Result<(), NakikaError> {
    let request = Request::get(&gossip_url(relay_addr))
        .with_header(peering::GOSSIP_HEADER, &membership.digest())
        .with_header(peering::GOSSIP_PROBE_HEADER, target_addr);
    let mut response = origin.fetch_peer(relay_addr, &request)?;
    if !response.status.is_success() {
        return Err(NakikaError::Upstream {
            url: gossip_url(relay_addr),
            reason: format!("indirect probe answered {}", response.status),
        });
    }
    if response.body.buffer().is_ok() {
        let events = membership.merge_digest(&response.body.to_text());
        apply_events(overlay, &events);
    }
    Ok(())
}

/// The service wrapper answering [`peering::GOSSIP_PATH`].  Sits directly
/// around the node service (inside every middleware layer), so gossip
/// exchanges bypass redirection, admission and logging — they are plumbing,
/// not traffic — and the node's `requests` counter never sees them.
pub struct GossipService {
    inner: Arc<dyn HttpService>,
    membership: Arc<Membership>,
    overlay: Arc<Overlay>,
    origin: Arc<dyn OriginFetch>,
}

impl GossipService {
    /// Wraps `inner`, answering gossip exchanges with `membership` and
    /// relaying indirect probes through `origin`.
    pub fn new(
        inner: Arc<dyn HttpService>,
        membership: Arc<Membership>,
        overlay: Arc<Overlay>,
        origin: Arc<dyn OriginFetch>,
    ) -> GossipService {
        GossipService {
            inner,
            membership,
            overlay,
            origin,
        }
    }

    fn handle_gossip(&self, req: &Request) -> Response {
        // Merge the prober's digest first: even a probe that is really a
        // ping-req teaches us the requester's view of the roster.
        if let Some(digest) = req.headers.get(peering::GOSSIP_HEADER) {
            let events = self.membership.merge_digest(digest);
            apply_events(&self.overlay, &events);
        }
        if let Some(target) = req.headers.get(peering::GOSSIP_PROBE_HEADER) {
            // Ping-req relay: probe the target on the requester's behalf.
            let target = target.trim().to_string();
            if gossip_exchange(&self.membership, &self.overlay, &self.origin, &target).is_err() {
                return Response::error(StatusCode::BAD_GATEWAY);
            }
        }
        Response::ok("text/plain", self.membership.digest())
    }
}

impl HttpService for GossipService {
    fn call(&self, req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
        if req.uri.path == peering::GOSSIP_PATH {
            return Ok(self.handle_gossip(&req));
        }
        self.inner.call(req, _ctx)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        if req.uri.path == peering::GOSSIP_PATH {
            // A plain exchange is pure in-memory state; a ping-req relay
            // opens a socket to the target and must stay off the event loop.
            return if req.headers.contains(peering::GOSSIP_PROBE_HEADER) {
                DispatchHint::MayBlock
            } else {
                DispatchHint::Inline
            };
        }
        self.inner.dispatch_hint(req, ctx)
    }

    fn relay_plan(&self, req: &Request, ctx: &RequestCtx) -> Option<RelayPlan> {
        // Gossip exchanges are answered from membership state, never
        // relayed from an upstream socket.
        if req.uri.path == peering::GOSSIP_PATH {
            return None;
        }
        self.inner.relay_plan(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::origin_from_fn;
    use crate::service::service_fn;
    use nakika_overlay::MembershipConfig;
    use parking_lot::Mutex;

    fn service(name: &str) -> (GossipService, Arc<Membership>, Arc<Overlay>) {
        let membership = Arc::new(Membership::with_manual_clock(
            name,
            MembershipConfig::default(),
        ));
        membership.set_self_addr(&format!("http://{name}.example"));
        let overlay = Arc::new(Overlay::with_defaults());
        let inner = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "inner")));
        let origin = origin_from_fn(|_req| Response::error(StatusCode::BAD_GATEWAY));
        let svc = GossipService::new(inner, membership.clone(), overlay.clone(), origin);
        (svc, membership, overlay)
    }

    #[test]
    fn exchange_merges_the_probers_digest_and_answers_with_ours() {
        let (svc, membership, overlay) = service("alpha");
        let req = Request::get(&format!("http://alpha.example{}", peering::GOSSIP_PATH))
            .with_header(peering::GOSSIP_HEADER, "self beta http://beta.example 0");
        let resp = svc.call(req, &RequestCtx::at(1)).unwrap();
        assert!(resp.status.is_success());
        let digest = resp.body.to_text();
        assert!(digest.starts_with("self alpha "), "digest: {digest}");
        assert!(digest.contains("alive beta "), "digest: {digest}");
        // The merge reached the overlay: beta owns keys now.
        assert_eq!(membership.stats().alive, 2);
        assert_eq!(overlay.len(), 1);
        assert_eq!(
            overlay.addr_of(key_for("beta")).as_deref(),
            Some("http://beta.example")
        );
    }

    #[test]
    fn non_gossip_paths_pass_through_untouched() {
        let (svc, _, _) = service("alpha");
        let resp = svc
            .call(Request::get("http://site.example/page"), &RequestCtx::at(1))
            .unwrap();
        assert_eq!(resp.body.to_text(), "inner");
    }

    #[test]
    fn failed_relay_probe_answers_bad_gateway() {
        let (svc, _, _) = service("alpha");
        let req = Request::get(&format!("http://alpha.example{}", peering::GOSSIP_PATH))
            .with_header(peering::GOSSIP_PROBE_HEADER, "http://dead.example");
        let resp = svc.call(req, &RequestCtx::at(1)).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn relay_probe_reaches_the_target_through_fetch_peer() {
        let membership = Arc::new(Membership::with_manual_clock(
            "relay",
            MembershipConfig::default(),
        ));
        membership.set_self_addr("http://relay.example");
        let overlay = Arc::new(Overlay::with_defaults());
        let inner = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "inner")));
        // An origin whose peer path mimics the target's gossip endpoint.
        struct TargetOrigin {
            calls: Mutex<Vec<String>>,
        }
        impl OriginFetch for TargetOrigin {
            fn fetch_origin(&self, _request: &Request) -> Response {
                Response::error(StatusCode::BAD_GATEWAY)
            }
            fn fetch_peer(&self, peer: &str, _req: &Request) -> Result<Response, NakikaError> {
                self.calls.lock().push(peer.to_string());
                Ok(Response::ok(
                    "text/plain",
                    "self target http://target.example 0",
                ))
            }
        }
        let origin = Arc::new(TargetOrigin {
            calls: Mutex::new(Vec::new()),
        });
        let svc = GossipService::new(inner, membership.clone(), overlay, origin.clone());
        let req = Request::get(&format!("http://relay.example{}", peering::GOSSIP_PATH))
            .with_header(peering::GOSSIP_PROBE_HEADER, "http://target.example");
        let resp = svc.call(req, &RequestCtx::at(1)).unwrap();
        assert!(resp.status.is_success());
        assert_eq!(origin.calls.lock().as_slice(), ["http://target.example"]);
        // The relay learned the target from the relayed exchange.
        assert_eq!(membership.stats().alive, 2);
    }

    #[test]
    fn gossip_dispatches_inline_unless_it_relays() {
        let (svc, _, _) = service("alpha");
        let plain = Request::get(&format!("http://a{}", peering::GOSSIP_PATH));
        assert_eq!(
            svc.dispatch_hint(&plain, &RequestCtx::at(1)),
            DispatchHint::Inline
        );
        let relaying = plain
            .clone()
            .with_header(peering::GOSSIP_PROBE_HEADER, "http://b");
        assert_eq!(
            svc.dispatch_hint(&relaying, &RequestCtx::at(1)),
            DispatchHint::MayBlock
        );
    }
}
