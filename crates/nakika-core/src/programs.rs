//! The hash-keyed cache of compiled NkScript programs, and the node's choice
//! of execution engine.
//!
//! Every script a node runs — wall scripts, site stages, Na Kika Pages —
//! arrives as source text.  Before this cache existed the node reparsed (and
//! for pages, re-executed from the AST) on every request; now each distinct
//! source is parsed and lowered to bytecode exactly once, keyed by a 64-bit
//! FNV-1a hash of the text, and every later request reuses the compiled
//! artifact.  The `compiles` / `hits` counters surface through
//! [`NaKikaNode::cache_stats`](crate::node::NaKikaNode::cache_stats) (as
//! `script_compiles` / `script_cache_hits`) and the `/__nakika/stats`
//! cluster endpoint, so the "compile once, execute many" property is
//! observable in production, not just asserted in tests.

use nakika_script::ast::Program;
use nakika_script::{
    compile, parse_program, CompiledProgram, Context, Interpreter, ScriptError, Value, Vm,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which execution engine runs NkScript on this node.
///
/// Both engines honour the identical sandbox contract (fuel, heap
/// accounting, the asynchronous kill flag) and are pinned to identical
/// values and errors by the differential property tests in
/// `nakika-script/tests/differential.rs`; they differ only in speed.  The
/// interpreter remains selectable as the reference engine for debugging and
/// for the `bench_scripted` ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScriptEngine {
    /// The stack-based bytecode VM (the default): scripts are lowered once
    /// to bytecode and executed at event-loop speed.
    #[default]
    Vm,
    /// The tree-walking interpreter: executes the AST directly, reference
    /// semantics, several times slower on compute-heavy handlers.
    Interp,
}

/// One cached script: the parsed AST (still needed by the interpreter engine
/// and by load-time policy analysis) alongside its bytecode lowering.
pub struct CachedScript {
    /// The parsed program.
    pub ast: Arc<Program>,
    /// The bytecode lowering of the same program.
    pub compiled: Arc<CompiledProgram>,
}

impl ScriptEngine {
    /// Runs a cached script's top level in `ctx`, returning the value of its
    /// last expression statement.
    pub fn run(self, ctx: &Context, script: &CachedScript) -> Result<Value, ScriptError> {
        match self {
            ScriptEngine::Vm => Vm::new(ctx).run(&script.compiled),
            ScriptEngine::Interp => Interpreter::new(ctx).run(&script.ast),
        }
    }

    /// Calls a script function value (an event handler) under `ctx`.
    /// `program` supplies the bytecode for the handler's function literal
    /// when the VM engine is selected; the interpreter ignores it.
    pub fn call(
        self,
        ctx: &Context,
        program: &CompiledProgram,
        callee: &Value,
        this: &Value,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        match self {
            ScriptEngine::Vm => Vm::new(ctx).call_function(program, callee, this, args),
            ScriptEngine::Interp => Interpreter::new(ctx).call_function(callee, this, args),
        }
    }
}

/// 64-bit FNV-1a over the script source — the program cache's key.
fn fnv1a(source: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in source.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Upper bound on cached programs; reaching it clears the cache (losing
/// compilations only costs recompiles, never correctness).
const MAX_ENTRIES: usize = 1024;

/// The compiled-program cache: source hash → parsed AST + bytecode.
#[derive(Default)]
pub struct ProgramCache {
    entries: Mutex<HashMap<(u64, usize), Arc<CachedScript>>>,
    compiles: AtomicU64,
    hits: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the cached compilation of `source`, parsing and lowering it
    /// first if this exact text has not been seen before.  Parse errors are
    /// not cached: a broken script is cheap to re-reject and its callers
    /// negatively cache at their own layer (the stage cache).
    pub fn get_or_compile(&self, source: &str) -> Result<Arc<CachedScript>, ScriptError> {
        // The key pairs the hash with the length so a (vanishingly unlikely)
        // 64-bit collision cannot silently execute the wrong program.
        let key = (fnv1a(source), source.len());
        if let Some(cached) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let ast = Arc::new(parse_program(source)?);
        let compiled = Arc::new(compile(&ast));
        let cached = Arc::new(CachedScript { ast, compiled });
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() >= MAX_ENTRIES {
            entries.clear();
        }
        entries.insert(key, cached.clone());
        Ok(cached)
    }

    /// `(compiles, hits)` counters: scripts compiled from source, and
    /// lookups answered from the cache.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.compiles.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_once_and_hits_thereafter() {
        let cache = ProgramCache::new();
        let a1 = cache.get_or_compile("1 + 2").unwrap();
        let a2 = cache.get_or_compile("1 + 2").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let _b = cache.get_or_compile("3 * 4").unwrap();
        assert_eq!(cache.counters(), (2, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = ProgramCache::new();
        assert!(cache.get_or_compile("var x = ;").is_err());
        assert!(cache.get_or_compile("var x = ;").is_err());
        assert_eq!(cache.counters(), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn both_engines_run_a_cached_script() {
        let cache = ProgramCache::new();
        let script = cache.get_or_compile("var x = 20; x * 2 + 2").unwrap();
        for engine in [ScriptEngine::Vm, ScriptEngine::Interp] {
            let ctx = Context::new();
            nakika_script::stdlib::install(&ctx);
            assert_eq!(engine.run(&ctx, &script).unwrap(), Value::Number(42.0));
        }
    }
}
