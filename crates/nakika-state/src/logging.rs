//! Edge-side access logging (paper §3.3).
//!
//! Na Kika performs access logging per site.  A site's script specifies the
//! URL to which log updates should be posted; periodically each node scans
//! its log, collects the entries for each site, and posts those portions to
//! the specified URLs.  This module implements the per-site batching and the
//! periodic flush; actually POSTing the batch is left to the caller (the
//! node), which returns it as `(post_url, serialized_entries)` pairs.

use parking_lot::Mutex;
use std::collections::HashMap;

/// One access-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Time of the access (seconds on the node's clock).
    pub timestamp: u64,
    /// Client address (or resolved domain) as known to the proxy.
    pub client: String,
    /// Request method.
    pub method: String,
    /// Requested URL.
    pub url: String,
    /// Response status code.
    pub status: u16,
    /// Response body size in bytes.
    pub bytes: usize,
}

impl LogEntry {
    /// Serialises the entry in a combined-log-like single line.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} \"{} {}\" {} {}",
            self.timestamp, self.client, self.method, self.url, self.status, self.bytes
        )
    }
}

#[derive(Default)]
struct SiteLog {
    post_url: Option<String>,
    entries: Vec<LogEntry>,
}

/// The per-node access log, partitioned by site.
#[derive(Default)]
pub struct AccessLog {
    sites: Mutex<HashMap<String, SiteLog>>,
}

impl AccessLog {
    /// Creates an empty log.
    pub fn new() -> AccessLog {
        AccessLog::default()
    }

    /// Configures where a site's log entries should be posted (called when
    /// the site's script registers logging).  Passing `None` disables
    /// logging for the site.
    pub fn configure_site(&self, site: &str, post_url: Option<&str>) {
        let mut sites = self.sites.lock();
        let log = sites.entry(site.to_string()).or_default();
        log.post_url = post_url.map(str::to_string);
    }

    /// Records an access for `site`.  Entries for sites that never configured
    /// a post URL are still buffered (the site may configure one later, and
    /// the node's operator can inspect them), but they are dropped at flush
    /// time.
    pub fn record(&self, site: &str, entry: LogEntry) {
        let mut sites = self.sites.lock();
        sites
            .entry(site.to_string())
            .or_default()
            .entries
            .push(entry);
    }

    /// Number of buffered entries for a site.
    pub fn pending(&self, site: &str) -> usize {
        self.sites
            .lock()
            .get(site)
            .map(|l| l.entries.len())
            .unwrap_or(0)
    }

    /// The periodic scan: drains every site's buffered entries and returns
    /// `(post_url, batch_body)` pairs for the node to POST.  Sites without a
    /// configured URL have their buffers cleared and produce nothing.
    pub fn flush(&self) -> Vec<(String, String)> {
        let mut sites = self.sites.lock();
        let mut batches = Vec::new();
        for log in sites.values_mut() {
            let entries = std::mem::take(&mut log.entries);
            if entries.is_empty() {
                continue;
            }
            if let Some(url) = &log.post_url {
                let body = entries
                    .iter()
                    .map(LogEntry::to_line)
                    .collect::<Vec<_>>()
                    .join("\n");
                batches.push((url.clone(), body));
            }
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, status: u16) -> LogEntry {
        LogEntry {
            timestamp: 100,
            client: "10.0.0.1".to_string(),
            method: "GET".to_string(),
            url: url.to_string(),
            status,
            bytes: 2096,
        }
    }

    #[test]
    fn records_are_batched_per_site() {
        let log = AccessLog::new();
        log.configure_site("med.nyu.edu", Some("http://med.nyu.edu/log-sink"));
        log.configure_site("other.org", Some("http://other.org/logs"));
        log.record("med.nyu.edu", entry("/simm/1", 200));
        log.record("med.nyu.edu", entry("/simm/2", 200));
        log.record("other.org", entry("/x", 404));
        assert_eq!(log.pending("med.nyu.edu"), 2);

        let mut batches = log.flush();
        batches.sort();
        assert_eq!(batches.len(), 2);
        assert!(batches[0].0.contains("med.nyu.edu"));
        assert_eq!(batches[0].1.lines().count(), 2);
        assert!(batches[1].1.contains("404"));
        // Buffers are drained by the flush.
        assert_eq!(log.pending("med.nyu.edu"), 0);
        assert!(log.flush().is_empty());
    }

    #[test]
    fn unconfigured_sites_produce_no_batches() {
        let log = AccessLog::new();
        log.record("silent.org", entry("/a", 200));
        assert_eq!(log.pending("silent.org"), 1);
        assert!(log.flush().is_empty());
        assert_eq!(log.pending("silent.org"), 0, "buffer still cleared");
    }

    #[test]
    fn log_line_format_is_stable() {
        let line = entry("/simm/1", 200).to_line();
        assert_eq!(line, "100 10.0.0.1 \"GET /simm/1\" 200 2096");
    }
}
