//! Per-site partitioned key-value storage with quota enforcement.
//!
//! Na Kika partitions hard state amongst sites and enforces resource
//! constraints on persistent storage (paper §3.3).  Each site gets its own
//! namespace; writes that would push a site past its byte quota are refused,
//! which is the storage analogue of the congestion controls on CPU and
//! memory.

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Errors from the site store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The write would exceed the site's storage quota.
    QuotaExceeded {
        /// The site whose quota would be exceeded.
        site: String,
        /// The quota in bytes.
        quota: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::QuotaExceeded { site, quota } => {
                write!(f, "site {site} exceeded its {quota}-byte storage quota")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Default)]
struct SitePartition {
    entries: BTreeMap<String, String>,
    used_bytes: usize,
}

/// A node-local store partitioned by site.
pub struct SiteStore {
    partitions: RwLock<BTreeMap<String, SitePartition>>,
    quota_bytes: usize,
}

impl SiteStore {
    /// Creates a store enforcing `quota_bytes` per site.
    pub fn new(quota_bytes: usize) -> SiteStore {
        SiteStore {
            partitions: RwLock::new(BTreeMap::new()),
            quota_bytes,
        }
    }

    /// Writes `value` under `key` in `site`'s partition.
    pub fn put(&self, site: &str, key: &str, value: &str) -> Result<(), StoreError> {
        let mut partitions = self.partitions.write();
        let partition = partitions.entry(site.to_string()).or_default();
        let old_size = partition
            .entries
            .get(key)
            .map(|v| key.len() + v.len())
            .unwrap_or(0);
        let new_size = key.len() + value.len();
        let projected = partition.used_bytes - old_size + new_size;
        if projected > self.quota_bytes {
            return Err(StoreError::QuotaExceeded {
                site: site.to_string(),
                quota: self.quota_bytes,
            });
        }
        partition.entries.insert(key.to_string(), value.to_string());
        partition.used_bytes = projected;
        Ok(())
    }

    /// Reads a value from a site's partition.
    pub fn get(&self, site: &str, key: &str) -> Option<String> {
        self.partitions
            .read()
            .get(site)
            .and_then(|p| p.entries.get(key).cloned())
    }

    /// Deletes a key; returns true if it existed.
    pub fn delete(&self, site: &str, key: &str) -> bool {
        let mut partitions = self.partitions.write();
        if let Some(partition) = partitions.get_mut(site) {
            if let Some(old) = partition.entries.remove(key) {
                partition.used_bytes -= key.len() + old.len();
                return true;
            }
        }
        false
    }

    /// All keys in a site's partition, sorted.
    pub fn keys(&self, site: &str) -> Vec<String> {
        self.partitions
            .read()
            .get(site)
            .map(|p| p.entries.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Keys in a site's partition starting with `prefix`.
    pub fn keys_with_prefix(&self, site: &str, prefix: &str) -> Vec<String> {
        self.partitions
            .read()
            .get(site)
            .map(|p| {
                p.entries
                    .keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Bytes used by a site's partition.
    pub fn used_bytes(&self, site: &str) -> usize {
        self.partitions
            .read()
            .get(site)
            .map(|p| p.used_bytes)
            .unwrap_or(0)
    }

    /// The per-site quota in bytes.
    pub fn quota_bytes(&self) -> usize {
        self.quota_bytes
    }

    /// Number of entries stored for a site.
    pub fn len(&self, site: &str) -> usize {
        self.partitions
            .read()
            .get(site)
            .map(|p| p.entries.len())
            .unwrap_or(0)
    }

    /// True if the site's partition holds no entries.
    pub fn is_empty(&self, site: &str) -> bool {
        self.len(site) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_round_trip() {
        let store = SiteStore::new(1024);
        assert!(store.get("a.com", "user:1").is_none());
        store.put("a.com", "user:1", "alice").unwrap();
        assert_eq!(store.get("a.com", "user:1").as_deref(), Some("alice"));
        assert!(store.delete("a.com", "user:1"));
        assert!(!store.delete("a.com", "user:1"));
        assert!(store.get("a.com", "user:1").is_none());
    }

    #[test]
    fn partitions_are_isolated_per_site() {
        let store = SiteStore::new(1024);
        store.put("a.com", "k", "from-a").unwrap();
        store.put("b.com", "k", "from-b").unwrap();
        assert_eq!(store.get("a.com", "k").as_deref(), Some("from-a"));
        assert_eq!(store.get("b.com", "k").as_deref(), Some("from-b"));
        assert_eq!(store.len("a.com"), 1);
        assert!(store.is_empty("c.com"));
    }

    #[test]
    fn quota_is_enforced_per_site() {
        let store = SiteStore::new(20);
        store.put("a.com", "k1", "0123456789").unwrap(); // 12 bytes
        let err = store.put("a.com", "k2", "0123456789").unwrap_err();
        assert!(matches!(err, StoreError::QuotaExceeded { .. }));
        // Another site is unaffected.
        store.put("b.com", "k2", "0123456789").unwrap();
        // Overwriting an existing key accounts for the freed space.
        store.put("a.com", "k1", "01234").unwrap();
        assert_eq!(store.used_bytes("a.com"), 7);
    }

    #[test]
    fn usage_accounting_tracks_deletes() {
        let store = SiteStore::new(1024);
        store.put("a.com", "key", "value").unwrap();
        assert_eq!(store.used_bytes("a.com"), 8);
        store.delete("a.com", "key");
        assert_eq!(store.used_bytes("a.com"), 0);
    }

    #[test]
    fn prefix_scans() {
        let store = SiteStore::new(4096);
        store.put("spec.org", "user:1", "a").unwrap();
        store.put("spec.org", "user:2", "b").unwrap();
        store.put("spec.org", "profile:1", "c").unwrap();
        assert_eq!(store.keys_with_prefix("spec.org", "user:").len(), 2);
        assert_eq!(store.keys("spec.org").len(), 3);
        assert!(store.keys_with_prefix("other.org", "user:").is_empty());
    }
}
