//! Script-driven replication of hard state across edge nodes.
//!
//! In Na Kika the *policy* of replication — where updates go, how conflicts
//! resolve — is written by content producers as ordinary scripts; the
//! platform supplies local storage and reliable messaging (paper §3.3,
//! following Gao et al.'s application-specific distributed objects).  The
//! [`ReplicationManager`] here is that platform piece: it accepts updates,
//! applies them to the local [`SiteStore`], and propagates them via the
//! [`MessageBus`] according to a per-site [`ReplicationStrategy`] that site
//! scripts select.  Conflict resolution is last-writer-wins by update
//! timestamp unless the optimistic strategy's merge hook decides otherwise.

use crate::messaging::{MessageBus, Subscription};
use crate::store::{SiteStore, StoreError};
use std::sync::Arc;

/// How a site wants its updates propagated (the trade-offs of Gao et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationStrategy {
    /// Updates go only to the origin server's node, which serialises them
    /// (strong consistency, lower availability).
    PrimaryOnly,
    /// Updates propagate to every node (optimistic, maximum availability,
    /// last-writer-wins conflict resolution).
    AllNodes,
}

/// A single hard-state update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// The site whose state is updated.
    pub site: String,
    /// Key within the site's partition.
    pub key: String,
    /// New value.
    pub value: String,
    /// Logical timestamp used for last-writer-wins resolution.
    pub timestamp: u64,
}

impl Update {
    /// Serialises the update into the wire format carried as a
    /// [`MessageBus`] payload (fields joined by the ASCII unit separator).
    ///
    /// The format is public so that other subsystems — notably the edge
    /// node's hot-entry cache replication — can put typed updates on the bus
    /// without inventing a second encoding.
    ///
    /// ```
    /// use nakika_state::Update;
    ///
    /// let update = Update {
    ///     site: "spec.example.org".into(),
    ///     key: "user:alice".into(),
    ///     value: "profile-v1".into(),
    ///     timestamp: 10,
    /// };
    /// assert_eq!(Update::decode(&update.encode()), Some(update));
    /// ```
    pub fn encode(&self) -> String {
        format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{}",
            self.timestamp, self.site, self.key, self.value
        )
    }

    /// Parses a payload produced by [`Update::encode`]; returns `None` for
    /// malformed input (a foreign message on the same topic, say) rather
    /// than failing the consumer.
    pub fn decode(payload: &str) -> Option<Update> {
        let mut parts = payload.splitn(4, '\u{1f}');
        let timestamp = parts.next()?.parse().ok()?;
        let site = parts.next()?.to_string();
        let key = parts.next()?.to_string();
        let value = parts.next()?.to_string();
        Some(Update {
            site,
            key,
            value,
            timestamp,
        })
    }

    /// The storage key under which the update's timestamp is remembered so
    /// that stale updates arriving later can be rejected.
    fn version_key(&self) -> String {
        format!("__ts__:{}", self.key)
    }
}

/// The replication endpoint running on one Na Kika node.
pub struct ReplicationManager {
    node_id: String,
    store: Arc<SiteStore>,
    bus: MessageBus,
    subscription: Subscription,
    strategy: ReplicationStrategy,
    /// Identifier of the node designated primary for `PrimaryOnly` sites.
    primary_node: String,
}

/// Topic carrying hard-state updates for a site.
fn topic_for(site: &str) -> String {
    format!("nakika/state/{site}")
}

impl ReplicationManager {
    /// Creates a manager for `site` on node `node_id`, wiring it to the
    /// shared bus and local store.
    pub fn new(
        node_id: &str,
        site: &str,
        store: Arc<SiteStore>,
        bus: MessageBus,
        strategy: ReplicationStrategy,
        primary_node: &str,
    ) -> ReplicationManager {
        let subscription = bus.subscribe(&topic_for(site), node_id);
        ReplicationManager {
            node_id: node_id.to_string(),
            store,
            bus,
            subscription,
            strategy,
            primary_node: primary_node.to_string(),
        }
    }

    /// The node this manager runs on.
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// Accepts an update originating at this node (e.g. a user registration
    /// POST handled by a site script): applies it locally and propagates it.
    pub fn accept_local_update(&self, update: &Update) -> Result<(), StoreError> {
        match self.strategy {
            ReplicationStrategy::PrimaryOnly => {
                // Only the primary applies; everyone forwards to it.
                if self.node_id == self.primary_node {
                    self.apply_if_newer(update)?;
                } else {
                    self.bus.publish(
                        &topic_for(&update.site),
                        &update.site,
                        &self.node_id,
                        &update.encode(),
                    );
                    return Ok(());
                }
            }
            ReplicationStrategy::AllNodes => {
                self.apply_if_newer(update)?;
            }
        }
        self.bus.publish(
            &topic_for(&update.site),
            &update.site,
            &self.node_id,
            &update.encode(),
        );
        Ok(())
    }

    /// Drains pending replication messages, applying each (the paper's
    /// "regular script processes the message and applies the update").
    /// Returns how many updates were applied.
    pub fn process_incoming(&self) -> usize {
        let mut applied = 0;
        while let Some(message) = self.bus.receive(&self.subscription) {
            if let Some(update) = Update::decode(&message.payload) {
                let relevant = match self.strategy {
                    ReplicationStrategy::AllNodes => true,
                    ReplicationStrategy::PrimaryOnly => self.node_id == self.primary_node,
                };
                if relevant && self.apply_if_newer(&update).is_ok() {
                    applied += 1;
                }
            }
            self.bus.ack(&self.subscription, message.sequence);
        }
        applied
    }

    /// Reads replicated state from the local partition.
    pub fn get(&self, site: &str, key: &str) -> Option<String> {
        self.store.get(site, key)
    }

    /// Applies an update unless a newer timestamp is already recorded
    /// (last-writer-wins conflict resolution).
    fn apply_if_newer(&self, update: &Update) -> Result<(), StoreError> {
        let current: u64 = self
            .store
            .get(&update.site, &update.version_key())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if update.timestamp < current {
            return Ok(()); // stale, silently dropped
        }
        self.store.put(&update.site, &update.key, &update.value)?;
        self.store.put(
            &update.site,
            &update.version_key(),
            &update.timestamp.to_string(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(key: &str, value: &str, ts: u64) -> Update {
        Update {
            site: "spec.org".to_string(),
            key: key.to_string(),
            value: value.to_string(),
            timestamp: ts,
        }
    }

    fn cluster(strategy: ReplicationStrategy, n: usize) -> (Vec<ReplicationManager>, MessageBus) {
        let bus = MessageBus::new();
        let managers = (0..n)
            .map(|i| {
                ReplicationManager::new(
                    &format!("node-{i}"),
                    "spec.org",
                    Arc::new(SiteStore::new(1 << 20)),
                    bus.clone(),
                    strategy,
                    "node-0",
                )
            })
            .collect();
        (managers, bus)
    }

    #[test]
    fn all_nodes_strategy_replicates_everywhere() {
        let (managers, _) = cluster(ReplicationStrategy::AllNodes, 3);
        managers[1]
            .accept_local_update(&update("user:42", "alice", 10))
            .unwrap();
        for m in &managers {
            m.process_incoming();
        }
        for m in &managers {
            assert_eq!(m.get("spec.org", "user:42").as_deref(), Some("alice"));
        }
    }

    #[test]
    fn primary_only_strategy_serialises_at_the_primary() {
        let (managers, _) = cluster(ReplicationStrategy::PrimaryOnly, 3);
        // An edge node accepts a POST and forwards it instead of applying.
        managers[2]
            .accept_local_update(&update("user:7", "bob", 5))
            .unwrap();
        assert!(managers[2].get("spec.org", "user:7").is_none());
        for m in &managers {
            m.process_incoming();
        }
        assert_eq!(
            managers[0].get("spec.org", "user:7").as_deref(),
            Some("bob")
        );
        // Replicas do not hold the value under PrimaryOnly.
        assert!(managers[1].get("spec.org", "user:7").is_none());
    }

    #[test]
    fn last_writer_wins_on_conflicts() {
        let (managers, _) = cluster(ReplicationStrategy::AllNodes, 2);
        managers[0]
            .accept_local_update(&update("profile", "old", 100))
            .unwrap();
        managers[1]
            .accept_local_update(&update("profile", "new", 200))
            .unwrap();
        for _ in 0..2 {
            for m in &managers {
                m.process_incoming();
            }
        }
        for m in &managers {
            assert_eq!(m.get("spec.org", "profile").as_deref(), Some("new"));
        }
        // A stale update arriving later does not clobber the newer value.
        managers[0]
            .accept_local_update(&update("profile", "stale", 150))
            .unwrap();
        for m in &managers {
            m.process_incoming();
        }
        for m in &managers {
            assert_eq!(m.get("spec.org", "profile").as_deref(), Some("new"));
        }
    }

    #[test]
    fn update_encoding_round_trips() {
        let u = update("key with spaces", "value\nwith newline", 42);
        assert_eq!(Update::decode(&u.encode()).unwrap(), u);
        assert!(Update::decode("garbage").is_none());
    }

    #[test]
    fn replication_respects_storage_quota() {
        let bus = MessageBus::new();
        let tiny = Arc::new(SiteStore::new(16));
        let manager = ReplicationManager::new(
            "node-0",
            "spec.org",
            tiny,
            bus,
            ReplicationStrategy::AllNodes,
            "node-0",
        );
        let big = update("k", &"x".repeat(100), 1);
        assert!(manager.accept_local_update(&big).is_err());
    }
}
