//! Hard state for Na Kika (paper §3.3).
//!
//! The web's expiration-based consistency is enough for most edge-side
//! content, but a complete platform also needs *hard state*: edge-side
//! access logs posted back to content producers, and replicated application
//! state (such as the SPECweb99 user registrations in the paper's
//! evaluation).  Na Kika builds its replication out of three pieces, all
//! reproduced here:
//!
//! * a per-site partitioned local store with a storage quota
//!   ([`store::SiteStore`], the MySQL substitute),
//! * a reliable, ordered messaging service for propagating updates between
//!   nodes ([`messaging::MessageBus`], the JORAM substitute), and
//! * a replication manager that applies updates locally and forwards them —
//!   the update-processing logic itself belongs to site scripts, so the
//!   manager exposes exactly the accept/apply/propagate hooks those scripts
//!   drive ([`replication::ReplicationManager`]).
//!
//! Access logging ([`logging::AccessLog`]) batches per-site entries and
//! periodically posts them to the URL the site's script configured.
//!
//! Beyond site scripts, the edge node itself rides the same machinery: when
//! cache replication is enabled (`NodeBuilder::replicate_hot` in
//! `nakika-core`), the consistent-hash owner of a hot key publishes an
//! [`Update`] describing the entry on a bus topic, and a per-node worker
//! drains the topic and pushes the entry to the key's successor peers over
//! TCP.  The [`Update::encode`]/[`Update::decode`] wire format is public for
//! exactly that reuse.
//!
//! # Example: propagating an update between two nodes
//!
//! ```
//! use nakika_state::{MessageBus, Update};
//!
//! let bus = MessageBus::new();
//! let sub = bus.subscribe("nakika/replicate", "edge-b");
//! let update = Update {
//!     site: "origin.example".into(),
//!     key: "GET http://origin.example/hot".into(),
//!     value: "http://origin.example/hot".into(),
//!     timestamp: 42,
//! };
//! bus.publish("nakika/replicate", &update.site, "edge-a", &update.encode());
//! let message = bus.receive(&sub).unwrap();
//! assert_eq!(Update::decode(&message.payload), Some(update));
//! bus.ack(&sub, message.sequence);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logging;
pub mod messaging;
pub mod replication;
pub mod store;

pub use logging::{AccessLog, LogEntry};
pub use messaging::{Message, MessageBus, Subscription};
pub use replication::{ReplicationManager, ReplicationStrategy, Update};
pub use store::{SiteStore, StoreError};
