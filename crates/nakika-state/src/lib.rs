//! Hard state for Na Kika (paper §3.3).
//!
//! The web's expiration-based consistency is enough for most edge-side
//! content, but a complete platform also needs *hard state*: edge-side
//! access logs posted back to content producers, and replicated application
//! state (such as the SPECweb99 user registrations in the paper's
//! evaluation).  Na Kika builds its replication out of three pieces, all
//! reproduced here:
//!
//! * a per-site partitioned local store with a storage quota
//!   ([`store::SiteStore`], the MySQL substitute),
//! * a reliable, ordered messaging service for propagating updates between
//!   nodes ([`messaging::MessageBus`], the JORAM substitute), and
//! * a replication manager that applies updates locally and forwards them —
//!   the update-processing logic itself belongs to site scripts, so the
//!   manager exposes exactly the accept/apply/propagate hooks those scripts
//!   drive ([`replication::ReplicationManager`]).
//!
//! Access logging ([`logging::AccessLog`]) batches per-site entries and
//! periodically posts them to the URL the site's script configured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logging;
pub mod messaging;
pub mod replication;
pub mod store;

pub use logging::{AccessLog, LogEntry};
pub use messaging::{Message, MessageBus, Subscription};
pub use replication::{ReplicationManager, ReplicationStrategy, Update};
pub use store::{SiteStore, StoreError};
