//! A reliable, ordered messaging service between Na Kika nodes.
//!
//! The paper's prototype uses the JORAM JMS broker to propagate hard-state
//! updates.  This module provides the equivalent primitive: named topics to
//! which nodes subscribe, per-subscriber FIFO queues, and at-least-once
//! delivery with acknowledgements (an unacknowledged message is redelivered).

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A message published to a topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Monotonically increasing per-topic sequence number.
    pub sequence: u64,
    /// The site on whose behalf the update travels.
    pub site: String,
    /// Opaque payload (site scripts define the format).
    pub payload: String,
    /// Identifier of the publishing node.
    pub from: String,
}

#[derive(Default)]
struct SubscriberQueue {
    pending: VecDeque<Message>,
    /// Messages delivered but not yet acknowledged, keyed by sequence.
    unacked: HashMap<u64, Message>,
}

#[derive(Default)]
struct TopicState {
    next_sequence: u64,
    subscribers: HashMap<String, SubscriberQueue>,
}

/// The in-process message broker shared by the nodes of a deployment.
#[derive(Default, Clone)]
pub struct MessageBus {
    topics: Arc<Mutex<HashMap<String, TopicState>>>,
}

/// A handle identifying one subscriber on one topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// Topic name.
    pub topic: String,
    /// Subscriber (node) identifier.
    pub subscriber: String,
}

impl MessageBus {
    /// Creates an empty bus.
    pub fn new() -> MessageBus {
        MessageBus::default()
    }

    /// Subscribes `subscriber` to `topic`; messages published after this call
    /// are queued for it.
    pub fn subscribe(&self, topic: &str, subscriber: &str) -> Subscription {
        let mut topics = self.topics.lock();
        topics
            .entry(topic.to_string())
            .or_default()
            .subscribers
            .entry(subscriber.to_string())
            .or_default();
        Subscription {
            topic: topic.to_string(),
            subscriber: subscriber.to_string(),
        }
    }

    /// Publishes a payload on a topic on behalf of a site.  Returns the
    /// sequence number assigned, or `None` if nobody is subscribed (the
    /// message is then dropped — there is no durable dead-letter store).
    pub fn publish(&self, topic: &str, site: &str, from: &str, payload: &str) -> Option<u64> {
        let mut topics = self.topics.lock();
        let state = topics.get_mut(topic)?;
        if state.subscribers.is_empty() {
            return None;
        }
        let sequence = state.next_sequence;
        state.next_sequence += 1;
        let message = Message {
            sequence,
            site: site.to_string(),
            payload: payload.to_string(),
            from: from.to_string(),
        };
        for (name, queue) in state.subscribers.iter_mut() {
            // The publisher does not receive its own update back.
            if name != from {
                queue.pending.push_back(message.clone());
            }
        }
        Some(sequence)
    }

    /// Delivers the next pending message for a subscription, moving it to the
    /// unacknowledged set.  Returns `None` when the queue is empty.
    pub fn receive(&self, sub: &Subscription) -> Option<Message> {
        let mut topics = self.topics.lock();
        let queue = topics
            .get_mut(&sub.topic)?
            .subscribers
            .get_mut(&sub.subscriber)?;
        let message = queue.pending.pop_front()?;
        queue.unacked.insert(message.sequence, message.clone());
        Some(message)
    }

    /// Acknowledges a delivered message; returns true if it was outstanding.
    pub fn ack(&self, sub: &Subscription, sequence: u64) -> bool {
        let mut topics = self.topics.lock();
        topics
            .get_mut(&sub.topic)
            .and_then(|t| t.subscribers.get_mut(&sub.subscriber))
            .map(|q| q.unacked.remove(&sequence).is_some())
            .unwrap_or(false)
    }

    /// Requeues every unacknowledged message for redelivery (at-least-once:
    /// called when a consumer crashes or times out).
    pub fn redeliver_unacked(&self, sub: &Subscription) -> usize {
        let mut topics = self.topics.lock();
        let Some(queue) = topics
            .get_mut(&sub.topic)
            .and_then(|t| t.subscribers.get_mut(&sub.subscriber))
        else {
            return 0;
        };
        let mut seqs: Vec<u64> = queue.unacked.keys().copied().collect();
        seqs.sort_unstable();
        let count = seqs.len();
        for seq in seqs.into_iter().rev() {
            if let Some(m) = queue.unacked.remove(&seq) {
                queue.pending.push_front(m);
            }
        }
        count
    }

    /// Number of messages waiting for a subscription.
    pub fn pending_count(&self, sub: &Subscription) -> usize {
        self.topics
            .lock()
            .get(&sub.topic)
            .and_then(|t| t.subscribers.get(&sub.subscriber))
            .map(|q| q.pending.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_receive_in_order() {
        let bus = MessageBus::new();
        let sub = bus.subscribe("updates/spec.org", "node-b");
        bus.publish("updates/spec.org", "spec.org", "node-a", "u1");
        bus.publish("updates/spec.org", "spec.org", "node-a", "u2");
        let m1 = bus.receive(&sub).unwrap();
        let m2 = bus.receive(&sub).unwrap();
        assert_eq!(m1.payload, "u1");
        assert_eq!(m2.payload, "u2");
        assert!(m1.sequence < m2.sequence);
        assert!(bus.receive(&sub).is_none());
    }

    #[test]
    fn publisher_does_not_receive_its_own_updates() {
        let bus = MessageBus::new();
        let sub_a = bus.subscribe("t", "node-a");
        let sub_b = bus.subscribe("t", "node-b");
        bus.publish("t", "site", "node-a", "update");
        assert!(bus.receive(&sub_a).is_none());
        assert!(bus.receive(&sub_b).is_some());
    }

    #[test]
    fn fan_out_to_all_other_subscribers() {
        let bus = MessageBus::new();
        let subs: Vec<Subscription> = (0..5)
            .map(|i| bus.subscribe("t", &format!("node-{i}")))
            .collect();
        bus.publish("t", "site", "node-0", "u");
        for (i, sub) in subs.iter().enumerate() {
            if i == 0 {
                assert_eq!(bus.pending_count(sub), 0);
            } else {
                assert_eq!(bus.pending_count(sub), 1);
            }
        }
    }

    #[test]
    fn unsubscribed_topic_drops_messages() {
        let bus = MessageBus::new();
        assert!(bus
            .publish("nobody-listens", "site", "node-a", "u")
            .is_none());
    }

    #[test]
    fn at_least_once_redelivery() {
        let bus = MessageBus::new();
        let sub = bus.subscribe("t", "node-b");
        bus.publish("t", "site", "node-a", "u1");
        let m = bus.receive(&sub).unwrap();
        // Consumer crashes before acking.
        assert_eq!(bus.redeliver_unacked(&sub), 1);
        let again = bus.receive(&sub).unwrap();
        assert_eq!(again, m);
        assert!(bus.ack(&sub, again.sequence));
        assert_eq!(bus.redeliver_unacked(&sub), 0);
        assert!(!bus.ack(&sub, again.sequence), "double ack is rejected");
    }
}
