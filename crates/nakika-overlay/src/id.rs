//! Node and key identifiers with the XOR distance metric.

use std::fmt;

/// A 64-bit identifier in the overlay's key space.
///
/// Coral and Kademlia use 160-bit SHA-1 identifiers; 64 bits of a good mixing
/// function give the same uniform-distribution and XOR-metric properties at
/// the scales exercised here (hundreds of nodes, millions of keys) while
/// keeping arithmetic cheap.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// XOR distance to another identifier.
    pub fn distance(&self, other: &NodeId) -> u64 {
        self.0 ^ other.0
    }

    /// Index of the highest differing bit (0..64), used for bucket placement;
    /// `None` when the identifiers are equal.
    pub fn bucket_index(&self, other: &NodeId) -> Option<u32> {
        let d = self.distance(other);
        if d == 0 {
            None
        } else {
            Some(63 - d.leading_zeros())
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hashes an arbitrary string (typically a URL) into the overlay key space
/// using the 64-bit FNV-1a mixing function followed by a finalizer.
pub fn key_for(s: &str) -> NodeId {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in s.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer for better avalanche than raw FNV.
    let mut z = hash.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    NodeId(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = NodeId(0b1010);
        let b = NodeId(0b0110);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0);
        assert_eq!(a.distance(&b), 0b1100);
    }

    #[test]
    fn bucket_index_is_highest_differing_bit() {
        let a = NodeId(0);
        assert_eq!(a.bucket_index(&NodeId(1)), Some(0));
        assert_eq!(a.bucket_index(&NodeId(0b1000)), Some(3));
        assert_eq!(a.bucket_index(&NodeId(u64::MAX)), Some(63));
        assert_eq!(a.bucket_index(&a), None);
    }

    #[test]
    fn key_hashing_is_deterministic_and_spreads() {
        assert_eq!(key_for("http://a.com/x"), key_for("http://a.com/x"));
        assert_ne!(key_for("http://a.com/x"), key_for("http://a.com/y"));
        let keys: HashSet<u64> = (0..10_000)
            .map(|i| key_for(&format!("http://site{}.example/page{}", i % 100, i)).0)
            .collect();
        assert_eq!(keys.len(), 10_000, "no collisions across 10k URLs");
        // Rough uniformity: top bit should split keys near 50/50.
        let high = keys.iter().filter(|k| *k >> 63 == 1).count();
        assert!((4_000..6_000).contains(&high), "top-bit split was {high}");
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(NodeId(0xff).to_string(), "00000000000000ff");
    }

    #[test]
    fn triangle_inequality_of_xor_metric() {
        // d(a,c) <= d(a,b) XOR-combined: the XOR metric satisfies
        // d(a,c) = d(a,b) ^ d(b,c); verify the algebraic identity.
        let (a, b, c) = (NodeId(123456), NodeId(987654), NodeId(555));
        assert_eq!(a.distance(&c), a.distance(&b) ^ b.distance(&c));
    }
}
