//! Coral-style hierarchical locality clusters.
//!
//! Coral organises nodes into levels of clusters by round-trip time: level 2
//! clusters group nodes within ~30 ms of each other, level 1 within ~100 ms,
//! and level 0 spans the whole network.  Lookups proceed from the most local
//! level outward, so a node usually discovers a nearby cached copy without
//! touching distant nodes.  Na Kika inherits exactly this behaviour for
//! cooperative caching and uses the same locality information for DNS
//! redirection.

use serde::{Deserialize, Serialize};

/// Cluster levels, from global to most local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClusterLevel {
    /// The whole network (no RTT bound).
    Global,
    /// Regional cluster (RTT below [`REGIONAL_RTT_MS`]).
    Regional,
    /// Local cluster (RTT below [`LOCAL_RTT_MS`]).
    Local,
}

/// RTT threshold for regional clusters, in milliseconds (Coral's level 1).
pub const REGIONAL_RTT_MS: f64 = 100.0;
/// RTT threshold for local clusters, in milliseconds (Coral's level 2).
pub const LOCAL_RTT_MS: f64 = 30.0;

impl ClusterLevel {
    /// Levels ordered from most local to global — the lookup order.
    pub const LOOKUP_ORDER: [ClusterLevel; 3] = [
        ClusterLevel::Local,
        ClusterLevel::Regional,
        ClusterLevel::Global,
    ];

    /// The RTT bound (in ms) for membership at this level.
    pub fn rtt_bound_ms(&self) -> f64 {
        match self {
            ClusterLevel::Global => f64::INFINITY,
            ClusterLevel::Regional => REGIONAL_RTT_MS,
            ClusterLevel::Local => LOCAL_RTT_MS,
        }
    }
}

/// A node's position in a simple 2-D latency space.
///
/// The simulator places nodes in a plane where Euclidean distance corresponds
/// to one-way latency in milliseconds — a standard network-coordinate
/// abstraction that is accurate enough to reproduce the paper's east-coast /
/// west-coast / Asia layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// X coordinate (ms).
    pub x: f64,
    /// Y coordinate (ms).
    pub y: f64,
}

impl Location {
    /// Creates a location.
    pub fn new(x: f64, y: f64) -> Location {
        Location { x, y }
    }

    /// One-way latency in milliseconds to another location.
    pub fn latency_ms(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Round-trip time in milliseconds to another location.
    pub fn rtt_ms(&self, other: &Location) -> f64 {
        2.0 * self.latency_ms(other)
    }

    /// The most local cluster level this location shares with another.
    pub fn shared_level(&self, other: &Location) -> ClusterLevel {
        let rtt = self.rtt_ms(other);
        if rtt <= LOCAL_RTT_MS {
            ClusterLevel::Local
        } else if rtt <= REGIONAL_RTT_MS {
            ClusterLevel::Regional
        } else {
            ClusterLevel::Global
        }
    }
}

/// Canonical locations used by the wide-area experiments (one-way ms scale,
/// roughly matching US-East / US-West / Asia PlanetLab latencies).
pub mod sites {
    use super::Location;

    /// New York (the paper's origin-server location).
    pub const US_EAST: Location = Location { x: 0.0, y: 0.0 };
    /// US West Coast (~35 ms one-way from the east coast).
    pub const US_WEST: Location = Location { x: 35.0, y: 0.0 };
    /// Asia (~90 ms one-way from the east coast).
    pub const ASIA: Location = Location { x: 90.0, y: 30.0 };
    /// A LAN neighbour of the east-coast site (sub-millisecond).
    pub const US_EAST_LAN: Location = Location { x: 0.2, y: 0.0 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_geometry() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert_eq!(a.latency_ms(&b), 5.0);
        assert_eq!(a.rtt_ms(&b), 10.0);
        assert_eq!(a.latency_ms(&a), 0.0);
    }

    #[test]
    fn cluster_levels_follow_rtt() {
        let east = sites::US_EAST;
        assert_eq!(east.shared_level(&sites::US_EAST_LAN), ClusterLevel::Local);
        assert_eq!(east.shared_level(&sites::US_WEST), ClusterLevel::Regional);
        assert_eq!(east.shared_level(&sites::ASIA), ClusterLevel::Global);
    }

    #[test]
    fn lookup_order_is_most_local_first() {
        assert_eq!(ClusterLevel::LOOKUP_ORDER[0], ClusterLevel::Local);
        assert_eq!(ClusterLevel::LOOKUP_ORDER[2], ClusterLevel::Global);
        assert!(ClusterLevel::Local.rtt_bound_ms() < ClusterLevel::Regional.rtt_bound_ms());
        assert!(ClusterLevel::Global.rtt_bound_ms().is_infinite());
    }
}
