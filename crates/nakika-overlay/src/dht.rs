//! The sloppy, TTL'd distributed hash table.
//!
//! Keys (hashed URLs) map onto nodes by XOR proximity.  A `put` stores a
//! value (typically "node X holds a cached copy of URL Y") on up to
//! `replication` nodes near the key *within the most local cluster first*,
//! spilling outward only when local nodes are saturated for that key — this
//! is Coral's "sloppy" storage, which prevents hot keys from overloading
//! their home node.  A `get` walks the cluster levels from local to global
//! and returns the freshest values it finds, counting the (simulated)
//! network hops so experiments can account for lookup latency.

use crate::cluster::{ClusterLevel, Location};
use crate::id::{key_for, NodeId};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A value stored under a key: an opaque payload plus soft-state metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredValue {
    /// The payload — for Na Kika's cooperative cache this is the identifier
    /// of the proxy holding a cached copy.
    pub payload: String,
    /// Absolute expiration time (seconds on the caller's clock).
    pub expires_at: u64,
    /// The node that inserted the value.
    pub origin: NodeId,
}

/// Configuration knobs for the overlay.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// How many nodes near the key hold each value.
    pub replication: usize,
    /// Per-node cap on values stored under a single key (Coral's sloppiness
    /// bound); additional puts spill to the next-closest node.
    pub values_per_key: usize,
    /// Maximum nodes contacted during one lookup at one cluster level.
    pub lookup_fanout: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            replication: 2,
            values_per_key: 4,
            lookup_fanout: 8,
        }
    }
}

/// Statistics accumulated by the overlay, used by the experiment harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlayStats {
    /// Total put operations.
    pub puts: u64,
    /// Total get operations.
    pub gets: u64,
    /// Gets that found at least one unexpired value.
    pub hits: u64,
    /// Total (simulated) node-to-node hops across all operations.
    pub hops: u64,
}

struct NodeState {
    id: NodeId,
    location: Location,
    /// key -> stored values.
    store: HashMap<u64, Vec<StoredValue>>,
    alive: bool,
    /// Base URL (e.g. `http://10.0.0.3:8080`) where the node's proxy listens,
    /// when the deployment runs over real sockets.  Simulated nodes have none.
    addr: Option<String>,
}

/// A live overlay member as seen by routing: its identifier, position in the
/// latency space, and — for deployments running over real sockets — the base
/// URL where its proxy front-end listens.
///
/// Members with `addr: None` are simulator-only nodes; peer fetches over TCP
/// skip them and fall back to the origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// The member's overlay identifier.
    pub id: NodeId,
    /// The member's position in the latency space.
    pub location: Location,
    /// Base URL of the member's proxy front-end, if it serves real traffic.
    pub addr: Option<String>,
}

/// The in-process overlay: a registry of participating nodes plus the
/// routing and storage logic.  All state is behind a single lock; operations
/// are short and the simulator drives the overlay from one thread at a time,
/// while the real proxy front-end issues only a handful of calls per request.
pub struct Overlay {
    nodes: RwLock<Vec<NodeState>>,
    config: OverlayConfig,
    stats: RwLock<OverlayStats>,
}

impl Overlay {
    /// Creates an empty overlay.
    pub fn new(config: OverlayConfig) -> Overlay {
        Overlay {
            nodes: RwLock::new(Vec::new()),
            config,
            stats: RwLock::new(OverlayStats::default()),
        }
    }

    /// Creates an overlay with default configuration.
    pub fn with_defaults() -> Overlay {
        Overlay::new(OverlayConfig::default())
    }

    /// Adds a node; joining requires only knowing the overlay, which is the
    /// "low administrative overhead" property the paper relies on for
    /// incremental deployment.
    pub fn join(&self, id: NodeId, location: Location) {
        self.join_inner(id, location, None);
    }

    /// Adds a node that serves real traffic: `addr` is the base URL of its
    /// proxy front-end (e.g. `http://127.0.0.1:8080`).  Peers use it to route
    /// cache misses to the key's consistent-hash owner over TCP.
    ///
    /// Re-joining updates the location and address of an existing member.
    pub fn join_with_addr(&self, id: NodeId, location: Location, addr: &str) {
        self.join_inner(id, location, Some(addr.to_string()));
    }

    fn join_inner(&self, id: NodeId, location: Location, addr: Option<String>) {
        let mut nodes = self.nodes.write();
        if let Some(existing) = nodes.iter_mut().find(|n| n.id == id) {
            existing.alive = true;
            existing.location = location;
            if addr.is_some() {
                existing.addr = addr;
            }
            return;
        }
        nodes.push(NodeState {
            id,
            location,
            store: HashMap::new(),
            alive: true,
            addr,
        });
    }

    /// Records (or updates) the base URL of an already-joined member — real
    /// deployments bind their listening socket *after* joining, so the port
    /// is only known once the server is up.  Returns false if `id` is not a
    /// member.
    pub fn set_addr(&self, id: NodeId, addr: &str) -> bool {
        let mut nodes = self.nodes.write();
        match nodes.iter_mut().find(|n| n.id == id) {
            Some(n) => {
                n.addr = Some(addr.to_string());
                true
            }
            None => false,
        }
    }

    /// The base URL of a live member, if it has announced one.
    pub fn addr_of(&self, id: NodeId) -> Option<String> {
        self.nodes
            .read()
            .iter()
            .find(|n| n.id == id && n.alive)
            .and_then(|n| n.addr.clone())
    }

    /// Snapshot of the live membership.
    pub fn members(&self) -> Vec<Member> {
        self.nodes
            .read()
            .iter()
            .filter(|n| n.alive)
            .map(|n| Member {
                id: n.id,
                location: n.location,
                addr: n.addr.clone(),
            })
            .collect()
    }

    /// The `count` live members responsible for `key_str`, closest first in
    /// the XOR metric.  The first entry is the key's *owner* (the node a
    /// cache miss is routed to); the rest are its successors, which hot
    /// entries replicate onto.
    pub fn nodes_for_key(&self, key_str: &str, count: usize) -> Vec<Member> {
        let key = key_for(key_str);
        let nodes = self.nodes.read();
        let mut live: Vec<&NodeState> = nodes.iter().filter(|n| n.alive).collect();
        live.sort_by_key(|n| n.id.distance(&key));
        live.into_iter()
            .take(count)
            .map(|n| Member {
                id: n.id,
                location: n.location,
                addr: n.addr.clone(),
            })
            .collect()
    }

    /// The live member that owns `key_str` under consistent hashing (minimal
    /// XOR distance), or `None` on an empty overlay.
    pub fn owner_of(&self, key_str: &str) -> Option<Member> {
        self.nodes_for_key(key_str, 1).into_iter().next()
    }

    /// The `count` live members that follow the owner in XOR order for
    /// `key_str` — the replication targets for a hot key.
    pub fn successors_of(&self, key_str: &str, count: usize) -> Vec<Member> {
        self.nodes_for_key(key_str, count.saturating_add(1))
            .into_iter()
            .skip(1)
            .collect()
    }

    /// Marks a node as departed; its stored values become unreachable (soft
    /// state: they simply expire elsewhere).
    pub fn leave(&self, id: NodeId) {
        if let Some(n) = self.nodes.write().iter_mut().find(|n| n.id == id) {
            n.alive = false;
        }
    }

    /// Marks a node as failed.  This is the failure detector's entry point
    /// (gossip membership declaring a peer faulty): mechanically identical
    /// to [`leave`](Self::leave), but named for the involuntary case —
    /// ownership and successor sets re-home to the surviving nodes on the
    /// next lookup.
    pub fn fail(&self, id: NodeId) {
        self.leave(id);
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().iter().filter(|n| n.alive).count()
    }

    /// True if no live nodes participate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `payload` under `key_str` on behalf of `from`, valid until
    /// `expires_at`.  Returns the number of replicas written.
    pub fn put(&self, from: NodeId, key_str: &str, payload: &str, expires_at: u64) -> usize {
        let key = key_for(key_str);
        let mut nodes = self.nodes.write();
        let from_location = match nodes.iter().find(|n| n.id == from && n.alive) {
            Some(n) => n.location,
            None => return 0,
        };
        // Candidate targets: live nodes ordered by (cluster locality to the
        // writer, XOR distance to the key) — local cluster first, then by key
        // proximity, which is Coral's insertion order.
        let mut order: Vec<(usize, ClusterLevel, u64)> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| {
                (
                    i,
                    from_location.shared_level(&n.location),
                    n.id.distance(&key),
                )
            })
            .collect();
        order.sort_by(|a, b| {
            cluster_rank(a.1)
                .cmp(&cluster_rank(b.1))
                .then(a.2.cmp(&b.2))
        });

        let mut written = 0usize;
        let mut hops = 0u64;
        for (idx, _, _) in order {
            if written >= self.config.replication {
                break;
            }
            hops += 1;
            let node = &mut nodes[idx];
            let values = node.store.entry(key.0).or_default();
            // Sloppiness: a node already holding `values_per_key` entries for
            // this key refuses the put and the writer spills to the next node.
            if values.len() >= self.config.values_per_key
                && !values.iter().any(|v| v.origin == from)
            {
                continue;
            }
            values.retain(|v| v.origin != from);
            values.push(StoredValue {
                payload: payload.to_string(),
                expires_at,
                origin: from,
            });
            written += 1;
        }
        let mut stats = self.stats.write();
        stats.puts += 1;
        stats.hops += hops;
        written
    }

    /// Looks up `key_str` on behalf of `from` at time `now`.  Returns the
    /// unexpired values found, ordered from the most local cluster outward,
    /// and records the hop count.
    pub fn get(&self, from: NodeId, key_str: &str, now: u64) -> Vec<StoredValue> {
        let key = key_for(key_str);
        let nodes = self.nodes.read();
        let from_location = match nodes.iter().find(|n| n.id == from && n.alive) {
            Some(n) => n.location,
            None => return Vec::new(),
        };
        let mut results = Vec::new();
        let mut hops = 0u64;
        for level in ClusterLevel::LOOKUP_ORDER {
            // Nodes in this cluster level, nearest the key first.
            let mut candidates: Vec<&NodeState> = nodes
                .iter()
                .filter(|n| n.alive && from_location.shared_level(&n.location) >= level)
                .collect();
            candidates.sort_by_key(|n| n.id.distance(&key));
            for node in candidates.into_iter().take(self.config.lookup_fanout) {
                hops += 1;
                if let Some(values) = node.store.get(&key.0) {
                    for v in values {
                        if v.expires_at > now && !results.contains(v) {
                            results.push(v.clone());
                        }
                    }
                }
            }
            if !results.is_empty() {
                break;
            }
        }
        drop(nodes);
        let mut stats = self.stats.write();
        stats.gets += 1;
        stats.hops += hops;
        if !results.is_empty() {
            stats.hits += 1;
        }
        results
    }

    /// Removes expired values everywhere (housekeeping the simulator calls
    /// periodically; a real deployment relies on lazy expiry plus this sweep).
    pub fn expire(&self, now: u64) {
        let mut nodes = self.nodes.write();
        for node in nodes.iter_mut() {
            for values in node.store.values_mut() {
                values.retain(|v| v.expires_at > now);
            }
            node.store.retain(|_, v| !v.is_empty());
        }
    }

    /// The `count` live nodes closest (by latency) to `location` — the
    /// primitive behind DNS redirection.
    pub fn nearest_nodes(&self, location: &Location, count: usize) -> Vec<(NodeId, Location)> {
        let nodes = self.nodes.read();
        let mut live: Vec<(NodeId, Location, f64)> = nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| (n.id, n.location, location.latency_ms(&n.location)))
            .collect();
        live.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        live.into_iter()
            .take(count)
            .map(|(id, loc, _)| (id, loc))
            .collect()
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> OverlayStats {
        self.stats.read().clone()
    }
}

fn cluster_rank(level: ClusterLevel) -> u8 {
    match level {
        ClusterLevel::Local => 0,
        ClusterLevel::Regional => 1,
        ClusterLevel::Global => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::sites;

    fn overlay_with_nodes() -> (Overlay, Vec<NodeId>) {
        let overlay = Overlay::with_defaults();
        let ids: Vec<NodeId> = (1..=6u64).map(NodeId).collect();
        overlay.join(ids[0], sites::US_EAST);
        overlay.join(ids[1], sites::US_EAST_LAN);
        overlay.join(ids[2], sites::US_WEST);
        overlay.join(ids[3], Location::new(36.0, 1.0)); // west LAN neighbour
        overlay.join(ids[4], sites::ASIA);
        overlay.join(ids[5], Location::new(91.0, 30.0)); // asia neighbour
        (overlay, ids)
    }

    #[test]
    fn join_leave_and_counting() {
        let (overlay, ids) = overlay_with_nodes();
        assert_eq!(overlay.len(), 6);
        overlay.leave(ids[0]);
        assert_eq!(overlay.len(), 5);
        overlay.join(ids[0], sites::US_EAST);
        assert_eq!(overlay.len(), 6);
        assert!(!overlay.is_empty());
    }

    #[test]
    fn put_then_get_round_trips() {
        let (overlay, ids) = overlay_with_nodes();
        let written = overlay.put(ids[0], "http://med.nyu.edu/simm/1", "proxy-east", 100);
        assert!(written >= 1);
        let values = overlay.get(ids[1], "http://med.nyu.edu/simm/1", 50);
        assert!(!values.is_empty());
        assert_eq!(values[0].payload, "proxy-east");
        let stats = overlay.stats();
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.hops > 0);
    }

    #[test]
    fn values_expire() {
        let (overlay, ids) = overlay_with_nodes();
        overlay.put(ids[0], "http://a.com/x", "proxy-1", 100);
        assert!(overlay.get(ids[0], "http://a.com/x", 150).is_empty());
        overlay.expire(150);
        // After the sweep the value is physically gone too.
        assert!(overlay.get(ids[0], "http://a.com/x", 50).is_empty());
    }

    #[test]
    fn missing_key_returns_empty_and_counts_miss() {
        let (overlay, ids) = overlay_with_nodes();
        assert!(overlay.get(ids[2], "http://nowhere/", 10).is_empty());
        let stats = overlay.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.gets, 1);
    }

    #[test]
    fn lookups_prefer_the_local_cluster() {
        let (overlay, ids) = overlay_with_nodes();
        // A west-coast node announces a copy; an east-coast node announces
        // another copy of the same URL.
        overlay.put(ids[2], "http://shared/resource", "proxy-west", 1_000);
        overlay.put(ids[0], "http://shared/resource", "proxy-east", 1_000);
        // A west-coast reader should find the west replica without needing the
        // global cluster (the east replica may also surface, but the local one
        // must be present).
        let values = overlay.get(ids[3], "http://shared/resource", 10);
        assert!(values.iter().any(|v| v.payload == "proxy-west"));
    }

    #[test]
    fn sloppy_storage_spills_but_keeps_single_copy_reachable() {
        let config = OverlayConfig {
            replication: 1,
            values_per_key: 2,
            lookup_fanout: 8,
        };
        let overlay = Overlay::new(config);
        let ids: Vec<NodeId> = (1..=5u64).map(NodeId).collect();
        for id in &ids {
            overlay.join(*id, sites::US_EAST);
        }
        // Many distinct proxies announce copies of one hot URL.
        for (i, id) in ids.iter().enumerate() {
            let written = overlay.put(*id, "http://hot/page", &format!("proxy-{i}"), 1_000);
            assert_eq!(written, 1);
        }
        // The hot key's values are spread across nodes rather than piling onto
        // the single closest node; a lookup still finds copies.
        let values = overlay.get(ids[0], "http://hot/page", 10);
        assert!(!values.is_empty());
        let nodes = overlay.nodes.read();
        let max_per_node = nodes
            .iter()
            .map(|n| n.store.values().map(|v| v.len()).max().unwrap_or(0))
            .max()
            .unwrap();
        assert!(
            max_per_node <= 2,
            "sloppiness bound respected, saw {max_per_node}"
        );
    }

    #[test]
    fn re_announcing_replaces_rather_than_duplicates() {
        let (overlay, ids) = overlay_with_nodes();
        overlay.put(ids[0], "http://a.com/x", "proxy-east", 100);
        overlay.put(ids[0], "http://a.com/x", "proxy-east", 500);
        let values = overlay.get(ids[0], "http://a.com/x", 200);
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].expires_at, 500);
    }

    #[test]
    fn nearest_nodes_orders_by_latency() {
        let (overlay, ids) = overlay_with_nodes();
        let nearest = overlay.nearest_nodes(&sites::ASIA, 2);
        assert_eq!(nearest.len(), 2);
        assert!(nearest.iter().any(|(id, _)| *id == ids[4]));
        assert!(nearest.iter().any(|(id, _)| *id == ids[5]));
    }

    #[test]
    fn membership_carries_peer_addresses() {
        let overlay = Overlay::with_defaults();
        overlay.join_with_addr(NodeId(1), sites::US_EAST, "http://127.0.0.1:4001");
        overlay.join(NodeId(2), sites::US_WEST);
        assert_eq!(
            overlay.addr_of(NodeId(1)).as_deref(),
            Some("http://127.0.0.1:4001")
        );
        assert_eq!(overlay.addr_of(NodeId(2)), None);
        // Ports are often assigned after joining; set_addr patches them in.
        assert!(overlay.set_addr(NodeId(2), "http://127.0.0.1:4002"));
        assert!(!overlay.set_addr(NodeId(99), "http://nowhere"));
        assert_eq!(
            overlay.addr_of(NodeId(2)).as_deref(),
            Some("http://127.0.0.1:4002")
        );
        // Departed members stop resolving but keep their address for re-join.
        overlay.leave(NodeId(2));
        assert_eq!(overlay.addr_of(NodeId(2)), None);
        overlay.join(NodeId(2), sites::US_WEST);
        assert_eq!(
            overlay.addr_of(NodeId(2)).as_deref(),
            Some("http://127.0.0.1:4002")
        );
        let members = overlay.members();
        assert_eq!(members.len(), 2);
        assert!(members.iter().all(|m| m.addr.is_some()));
    }

    #[test]
    fn nodes_for_key_orders_by_xor_distance_and_skips_dead_nodes() {
        let overlay = Overlay::with_defaults();
        for id in 1..=4u64 {
            overlay.join(NodeId(id << 60), sites::US_EAST);
        }
        let key = "http://example.org/object";
        let ranked = overlay.nodes_for_key(key, 4);
        assert_eq!(ranked.len(), 4);
        let k = key_for(key);
        for pair in ranked.windows(2) {
            assert!(pair[0].id.distance(&k) <= pair[1].id.distance(&k));
        }
        let owner = overlay.owner_of(key).unwrap();
        assert_eq!(owner.id, ranked[0].id);
        let successors = overlay.successors_of(key, 2);
        assert_eq!(successors.len(), 2);
        assert_eq!(successors[0].id, ranked[1].id);
        assert_eq!(successors[1].id, ranked[2].id);
        // The owner departing promotes the first successor.
        overlay.leave(owner.id);
        assert_eq!(overlay.owner_of(key).unwrap().id, ranked[1].id);
    }

    #[test]
    fn owner_of_is_deterministic_across_views() {
        // Two independently-built registries with the same membership agree on
        // the owner — the property multi-process routing relies on.
        let a = Overlay::with_defaults();
        let b = Overlay::with_defaults();
        for name in ["edge-a", "edge-b", "edge-c"] {
            a.join(key_for(name), sites::US_EAST);
            b.join(key_for(name), sites::US_EAST);
        }
        for key in ["http://x/1", "http://x/2", "http://y/3"] {
            assert_eq!(a.owner_of(key).unwrap().id, b.owner_of(key).unwrap().id);
        }
        assert!(Overlay::with_defaults().owner_of("http://x/1").is_none());
    }

    #[test]
    fn departed_nodes_are_not_consulted() {
        let (overlay, ids) = overlay_with_nodes();
        overlay.put(ids[4], "http://asia-only/x", "proxy-asia", 1_000);
        overlay.leave(ids[4]);
        overlay.leave(ids[5]);
        // The only replica may have lived on the departed nodes; lookups must
        // still terminate and not error.
        let _ = overlay.get(ids[0], "http://asia-only/x", 10);
        assert_eq!(overlay.nearest_nodes(&sites::ASIA, 10).len(), 4);
    }
}
