//! SWIM-style gossip membership: dynamic rosters with failure detection.
//!
//! The simulator and the early TCP cluster distributed their rosters by
//! hand — every process was told the full membership once and never learned
//! about a crash.  This module is the *dynamic* membership layer: each node
//! runs a [`Membership`] state machine that periodically probes one peer,
//! escalates an unresponsive peer through indirect probes, and moves it
//! `alive → suspect → faulty` on a timeout, with incarnation numbers letting
//! a falsely accused node refute the suspicion.  Every probe doubles as an
//! anti-entropy exchange: both sides swap compact roster *digests*, so a
//! node seeded with a single `--join` address converges to the full roster
//! in a handful of rounds.
//!
//! The state machine is deliberately **sans-I/O**: it never opens a socket
//! and never reads a wall clock behind the caller's back.  A driver (the
//! gossip worker in `nakika-core`) calls [`Membership::poll`], performs the
//! [`ProbeAction`]s it returns over whatever transport it has, and reports
//! the outcomes back via [`Membership::on_ack`] /
//! [`Membership::on_probe_failed`] / [`Membership::merge_digest`].  Tests
//! drive the identical code on a manual clock
//! ([`Membership::with_manual_clock`] + [`Membership::advance`]), so the
//! suspect/faulty timing is pinned deterministically.
//!
//! State changes that matter to routing come back as [`MembershipEvent`]s;
//! the driver applies them to the [`Overlay`](crate::Overlay)
//! (`join_with_addr` on joins and recoveries, [`fail`](crate::Overlay::fail)
//! on faulty verdicts), which re-homes key ownership automatically — the
//! consistent-hash owner of a key is always computed from the *live* roster.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Timing and fan-out knobs for the membership protocol.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// Milliseconds between probe rounds (one direct ping per round).
    pub probe_interval_ms: u64,
    /// How long a suspect may stay unrefuted before it is declared faulty.
    pub suspect_timeout_ms: u64,
    /// How many relays are asked to probe indirectly when a direct probe
    /// fails (SWIM's `k`).
    pub indirect_probes: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            probe_interval_ms: 250,
            suspect_timeout_ms: 1_000,
            indirect_probes: 2,
        }
    }
}

/// A member's health as judged by the local failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Responding to probes (or not yet probed).
    Alive,
    /// Missed a direct and indirect probe round; awaiting refutation.
    Suspect,
    /// Suspicion timed out unrefuted: treated as crashed.
    Faulty,
}

/// A snapshot of one peer as the membership currently sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerInfo {
    /// The peer's node name (its overlay identity is `key_for(name)`).
    pub name: String,
    /// Base URL of the peer's proxy front-end.
    pub addr: String,
    /// The peer's incarnation number (bumped by the peer itself to refute
    /// suspicion; higher incarnations supersede lower ones everywhere).
    pub incarnation: u64,
    /// Current failure-detector verdict.
    pub state: PeerState,
}

/// A roster change the driver must apply to the routing layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MembershipEvent {
    /// A member was learned for the first time: join it into the overlay.
    Joined {
        /// The member's node name.
        name: String,
        /// Base URL of the member's proxy front-end.
        addr: String,
    },
    /// A previously suspect or faulty member proved alive again.
    Recovered {
        /// The member's node name.
        name: String,
        /// Base URL of the member's proxy front-end.
        addr: String,
    },
    /// A member was declared faulty: fail it out of the overlay so key
    /// ownership re-homes.
    Failed {
        /// The member's node name.
        name: String,
    },
}

/// Work the driver should perform for this probe round.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeAction {
    /// Exchange digests with this address.  `name` is `None` when the
    /// target is a bootstrap seed whose identity is not yet known; named
    /// targets that fail the direct exchange should be probed indirectly
    /// (see [`Membership::relay_candidates`]) before
    /// [`Membership::on_probe_failed`] is called.
    Ping {
        /// The target's node name, if already a roster member.
        name: Option<String>,
        /// The target's base URL.
        addr: String,
    },
}

/// Counters the stats endpoint exposes; see `/__nakika/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Members currently alive, the local node included.
    pub alive: u64,
    /// Members currently under unrefuted suspicion.
    pub suspect: u64,
    /// Members declared faulty (kept as tombstones so stale gossip cannot
    /// resurrect them without a higher incarnation).
    pub faulty: u64,
    /// Direct probes issued by the local prober.
    pub probes_sent: u64,
    /// Bumped on every roster change (joins, state transitions, refutations).
    pub roster_version: u64,
}

/// Placeholder emitted in digests while the local address is unknown;
/// parsers skip entries carrying it.
const NO_ADDR: &str = "-";

enum ClockSource {
    Wall(Instant),
    Manual(AtomicU64),
}

struct PeerRecord {
    addr: String,
    incarnation: u64,
    state: PeerState,
    /// When the current suspicion started (meaningful while `Suspect`).
    suspected_at: u64,
}

struct Inner {
    peers: HashMap<String, PeerRecord>,
    self_addr: Option<String>,
    self_incarnation: u64,
    roster_version: u64,
    seeds: Vec<String>,
    probe_cursor: usize,
    last_probe_ms: Option<u64>,
    /// Peer addresses (or names) the data path reported as unreachable;
    /// drained by [`Membership::poll`] into suspicion.
    failure_hints: Vec<String>,
    probes_sent: u64,
}

/// The SWIM-style membership state machine for one node.  Thread-safe: the
/// gossip worker, the gossip endpoint and the data path all hold one `Arc`.
pub struct Membership {
    name: String,
    config: MembershipConfig,
    clock: ClockSource,
    inner: Mutex<Inner>,
}

impl Membership {
    /// A membership for the node `name`, timing probes on the wall clock.
    pub fn new(name: &str, config: MembershipConfig) -> Membership {
        Membership::with_clock(name, config, ClockSource::Wall(Instant::now()))
    }

    /// A membership timed by [`advance`](Self::advance) instead of the wall
    /// clock, so tests pin suspect/faulty transitions deterministically.
    pub fn with_manual_clock(name: &str, config: MembershipConfig) -> Membership {
        Membership::with_clock(name, config, ClockSource::Manual(AtomicU64::new(0)))
    }

    fn with_clock(name: &str, config: MembershipConfig, clock: ClockSource) -> Membership {
        Membership {
            name: name.to_string(),
            config,
            clock,
            inner: Mutex::new(Inner {
                peers: HashMap::new(),
                self_addr: None,
                self_incarnation: 0,
                roster_version: 0,
                seeds: Vec::new(),
                probe_cursor: 0,
                last_probe_ms: None,
                failure_hints: Vec::new(),
                probes_sent: 0,
            }),
        }
    }

    /// The local node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured timing knobs.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// Advances the manual clock by `ms`.  No-op on a wall-clock membership.
    pub fn advance(&self, ms: u64) {
        if let ClockSource::Manual(now) = &self.clock {
            now.fetch_add(ms, Ordering::SeqCst);
        }
    }

    fn now_ms(&self) -> u64 {
        match &self.clock {
            ClockSource::Wall(start) => start.elapsed().as_millis() as u64,
            ClockSource::Manual(now) => now.load(Ordering::SeqCst),
        }
    }

    /// Records the local node's base URL once the server has bound its
    /// port.  Probing stays dormant until this is called — a digest without
    /// a reply address would be useless to the peers merging it.
    pub fn set_self_addr(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.self_addr = Some(addr.to_string());
        inner.roster_version += 1;
    }

    /// The announced local base URL, if known yet.
    pub fn self_addr(&self) -> Option<String> {
        self.inner.lock().self_addr.clone()
    }

    /// Adds a bootstrap seed address.  Seeds are probed whenever the roster
    /// holds no live peer, so a node started with one `--join` address finds
    /// the cluster and a fully partitioned node keeps retrying.
    pub fn add_seed(&self, addr: &str) {
        let mut inner = self.inner.lock();
        let addr = addr.trim_end_matches('/').to_string();
        if !inner.seeds.contains(&addr) {
            inner.seeds.push(addr);
        }
    }

    /// Merges a statically configured peer (the deprecated `PEERS` roster
    /// handshake) as if an `alive` digest entry had arrived for it.
    pub fn introduce(&self, name: &str, addr: &str) -> Vec<MembershipEvent> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let mut events = Vec::new();
        merge_entry(
            &self.name,
            &mut inner,
            &mut events,
            PeerState::Alive,
            name,
            addr,
            0,
            now,
        );
        events
    }

    /// Negative evidence from the data path: a peer fetch to `peer` (a base
    /// URL or node name) failed.  The hint is queued and converted into
    /// suspicion on the next [`poll`](Self::poll) — suspicion, not a
    /// verdict, because a single failed fetch may be the fetcher's fault,
    /// and the suspect can still refute through gossip.
    pub fn note_failure(&self, peer: &str) {
        let mut inner = self.inner.lock();
        let peer = peer.trim_end_matches('/');
        if inner.failure_hints.iter().any(|h| h == peer) {
            return;
        }
        inner.failure_hints.push(peer.to_string());
    }

    /// One scheduler tick: drains queued failure hints into suspicion,
    /// times suspects out into faulty verdicts, and — when a probe round is
    /// due — picks the next probe target (round-robin over non-faulty
    /// peers, falling back to the seeds while no live peer is known).
    /// Returns the probes to perform and the roster events to apply.
    /// Returns nothing until [`set_self_addr`](Self::set_self_addr).
    pub fn poll(&self) -> (Vec<ProbeAction>, Vec<MembershipEvent>) {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        if inner.self_addr.is_none() {
            return (Vec::new(), Vec::new());
        }
        let mut events = Vec::new();

        // Failure hints from the data path start (or refresh) suspicion.
        let hints = std::mem::take(&mut inner.failure_hints);
        for hint in hints {
            let hit = inner
                .peers
                .iter_mut()
                .find(|(name, rec)| rec.addr.trim_end_matches('/') == hint || **name == hint);
            if let Some((_, rec)) = hit {
                if rec.state == PeerState::Alive {
                    rec.state = PeerState::Suspect;
                    rec.suspected_at = now;
                    inner.roster_version += 1;
                }
            }
        }

        // Unrefuted suspicion times out into a faulty verdict.
        let timeout = self.config.suspect_timeout_ms;
        for (name, rec) in inner.peers.iter_mut() {
            if rec.state == PeerState::Suspect && now >= rec.suspected_at.saturating_add(timeout) {
                rec.state = PeerState::Faulty;
                events.push(MembershipEvent::Failed {
                    name: clone_name(name),
                });
            }
        }
        inner.roster_version += events.len() as u64;

        // Probe scheduling.
        let due = match inner.last_probe_ms {
            None => true,
            Some(last) => now >= last.saturating_add(self.config.probe_interval_ms),
        };
        let mut actions = Vec::new();
        if due {
            inner.last_probe_ms = Some(now);
            let candidates: Vec<(String, String)> = inner
                .peers
                .iter()
                .filter(|(_, rec)| rec.state != PeerState::Faulty)
                .map(|(name, rec)| (name.clone(), rec.addr.clone()))
                .collect();
            let any_alive = inner
                .peers
                .values()
                .any(|rec| rec.state == PeerState::Alive);
            if let Some((name, addr)) = pick_round_robin(&candidates, &mut inner.probe_cursor) {
                actions.push(ProbeAction::Ping {
                    name: Some(name),
                    addr,
                });
            }
            if !any_alive {
                let self_addr = inner.self_addr.clone();
                for seed in inner.seeds.clone() {
                    if self_addr.as_deref() == Some(seed.as_str()) {
                        continue;
                    }
                    if actions
                        .iter()
                        .any(|ProbeAction::Ping { addr, .. }| *addr == seed)
                    {
                        continue;
                    }
                    actions.push(ProbeAction::Ping {
                        name: None,
                        addr: seed,
                    });
                }
            }
            inner.probes_sent += actions.len() as u64;
        }
        (actions, events)
    }

    /// A probe target answered: a suspect is cleared back to alive on this
    /// direct evidence (gossiped suspicion elsewhere still needs the
    /// target's own incarnation bump to die out).
    pub fn on_ack(&self, name: &str) {
        let mut inner = self.inner.lock();
        if let Some(rec) = inner.peers.get_mut(name) {
            if rec.state == PeerState::Suspect {
                rec.state = PeerState::Alive;
                inner.roster_version += 1;
            }
        }
    }

    /// Both the direct probe and every indirect relay failed to reach
    /// `name`: start (or keep) suspicion.  The faulty verdict only comes
    /// from [`poll`](Self::poll) once the suspicion times out unrefuted.
    pub fn on_probe_failed(&self, name: &str) {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        if let Some(rec) = inner.peers.get_mut(name) {
            if rec.state == PeerState::Alive {
                rec.state = PeerState::Suspect;
                rec.suspected_at = now;
                inner.roster_version += 1;
            }
        }
    }

    /// Up to `indirect_probes` alive peers other than `exclude`, to relay
    /// an indirect probe (SWIM's ping-req) through.
    pub fn relay_candidates(&self, exclude: &str) -> Vec<PeerInfo> {
        let inner = self.inner.lock();
        inner
            .peers
            .iter()
            .filter(|(name, rec)| rec.state == PeerState::Alive && name.as_str() != exclude)
            .take(self.config.indirect_probes)
            .map(|(name, rec)| PeerInfo {
                name: name.clone(),
                addr: rec.addr.clone(),
                incarnation: rec.incarnation,
                state: rec.state,
            })
            .collect()
    }

    /// The wire digest: `;`-separated `state name addr incarnation`
    /// entries, the local node first as `self`.  Single-line by
    /// construction, so it rides equally well in the `X-Nakika-Gossip`
    /// header and a response body.
    pub fn digest(&self) -> String {
        let inner = self.inner.lock();
        let mut out = format!(
            "self {} {} {}",
            self.name,
            inner.self_addr.as_deref().unwrap_or(NO_ADDR),
            inner.self_incarnation
        );
        for (name, rec) in inner.peers.iter() {
            let state = match rec.state {
                PeerState::Alive => "alive",
                PeerState::Suspect => "suspect",
                PeerState::Faulty => "faulty",
            };
            out.push_str(&format!(";{state} {name} {} {}", rec.addr, rec.incarnation));
        }
        out
    }

    /// Merges a digest received from a peer (entries split on `;` or
    /// newlines; unparseable entries are skipped, never fatal).  Returns
    /// the roster events the merge produced.  An entry accusing the local
    /// node of being suspect or faulty at our current incarnation is
    /// refuted by bumping our incarnation, which our next digests carry.
    pub fn merge_digest(&self, digest: &str) -> Vec<MembershipEvent> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let mut events = Vec::new();
        for entry in digest
            .split([';', '\n'])
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let mut fields = entry.split_whitespace();
            let (Some(state), Some(name), Some(addr), Some(inc)) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                continue;
            };
            let Ok(incarnation) = inc.parse::<u64>() else {
                continue;
            };
            let state = match state {
                "self" | "alive" => PeerState::Alive,
                "suspect" => PeerState::Suspect,
                "faulty" => PeerState::Faulty,
                _ => continue,
            };
            if addr == NO_ADDR {
                continue;
            }
            if name == self.name {
                if state != PeerState::Alive && incarnation >= inner.self_incarnation {
                    // Refute: a higher incarnation supersedes the suspicion
                    // wherever the accusation has spread.
                    inner.self_incarnation = incarnation + 1;
                    inner.roster_version += 1;
                }
                continue;
            }
            merge_entry(
                &self.name,
                &mut inner,
                &mut events,
                state,
                name,
                addr,
                incarnation,
                now,
            );
        }
        events
    }

    /// Snapshot of every known peer (all states; the local node excluded).
    pub fn members(&self) -> Vec<PeerInfo> {
        let inner = self.inner.lock();
        inner
            .peers
            .iter()
            .map(|(name, rec)| PeerInfo {
                name: name.clone(),
                addr: rec.addr.clone(),
                incarnation: rec.incarnation,
                state: rec.state,
            })
            .collect()
    }

    /// Counter snapshot for the stats endpoint.
    pub fn stats(&self) -> GossipStats {
        let inner = self.inner.lock();
        let mut stats = GossipStats {
            alive: 1, // the local node
            probes_sent: inner.probes_sent,
            roster_version: inner.roster_version,
            ..GossipStats::default()
        };
        for rec in inner.peers.values() {
            match rec.state {
                PeerState::Alive => stats.alive += 1,
                PeerState::Suspect => stats.suspect += 1,
                PeerState::Faulty => stats.faulty += 1,
            }
        }
        stats
    }
}

fn clone_name(name: &str) -> String {
    name.to_string()
}

fn pick_round_robin(
    candidates: &[(String, String)],
    cursor: &mut usize,
) -> Option<(String, String)> {
    if candidates.is_empty() {
        return None;
    }
    let (name, addr) = candidates[*cursor % candidates.len()].clone();
    *cursor = cursor.wrapping_add(1);
    Some((name, addr))
}

/// SWIM's merge precedence for one digest entry about peer `name`:
/// `alive{i}` supersedes any record with a lower incarnation; `suspect{i}`
/// additionally supersedes `alive{i}` at the *same* incarnation (that is
/// what forces the accused to bump); `faulty{i}` supersedes anything up to
/// and including incarnation `i` except an existing faulty record.
#[allow(clippy::too_many_arguments)]
fn merge_entry(
    self_name: &str,
    inner: &mut Inner,
    events: &mut Vec<MembershipEvent>,
    state: PeerState,
    name: &str,
    addr: &str,
    incarnation: u64,
    now: u64,
) {
    debug_assert_ne!(name, self_name, "self entries are handled by the caller");
    match inner.peers.get_mut(name) {
        None => {
            inner.peers.insert(
                name.to_string(),
                PeerRecord {
                    addr: addr.to_string(),
                    incarnation,
                    state,
                    suspected_at: now,
                },
            );
            inner.roster_version += 1;
            if state != PeerState::Faulty {
                events.push(MembershipEvent::Joined {
                    name: name.to_string(),
                    addr: addr.to_string(),
                });
            }
        }
        Some(rec) => {
            let supersedes = match (state, rec.state) {
                (PeerState::Suspect, PeerState::Alive) => incarnation >= rec.incarnation,
                (PeerState::Faulty, PeerState::Alive | PeerState::Suspect) => {
                    incarnation >= rec.incarnation
                }
                _ => incarnation > rec.incarnation,
            };
            if !supersedes {
                return;
            }
            let was = rec.state;
            rec.incarnation = incarnation;
            rec.addr = addr.to_string();
            rec.state = state;
            if state == PeerState::Suspect && was != PeerState::Suspect {
                rec.suspected_at = now;
            }
            inner.roster_version += 1;
            match (was, state) {
                (PeerState::Suspect | PeerState::Faulty, PeerState::Alive) => {
                    events.push(MembershipEvent::Recovered {
                        name: name.to_string(),
                        addr: addr.to_string(),
                    });
                }
                (PeerState::Alive | PeerState::Suspect, PeerState::Faulty) => {
                    events.push(MembershipEvent::Failed {
                        name: name.to_string(),
                    });
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MembershipConfig {
        MembershipConfig {
            probe_interval_ms: 100,
            suspect_timeout_ms: 400,
            indirect_probes: 2,
        }
    }

    fn member(name: &str) -> Membership {
        let m = Membership::with_manual_clock(name, config());
        m.set_self_addr(&format!(
            "http://127.0.0.1:1{name_port}",
            name_port = name.len()
        ));
        m
    }

    fn states(m: &Membership) -> HashMap<String, PeerState> {
        m.members().into_iter().map(|p| (p.name, p.state)).collect()
    }

    #[test]
    fn probing_is_dormant_until_the_self_addr_is_known() {
        let m = Membership::with_manual_clock("alpha", config());
        m.add_seed("http://127.0.0.1:9001");
        let (actions, events) = m.poll();
        assert!(actions.is_empty() && events.is_empty());
        m.set_self_addr("http://127.0.0.1:9000");
        let (actions, _) = m.poll();
        assert_eq!(
            actions,
            vec![ProbeAction::Ping {
                name: None,
                addr: "http://127.0.0.1:9001".to_string()
            }]
        );
    }

    #[test]
    fn seeds_are_probed_until_a_live_peer_is_known() {
        let m = member("alpha");
        m.add_seed("http://127.0.0.1:9001");
        let (actions, _) = m.poll();
        assert_eq!(actions.len(), 1, "the seed is the only target");
        // Merging the seed's digest names it; the next round probes it as a
        // member, not as a seed.
        m.merge_digest("self beta http://127.0.0.1:9001 0");
        m.advance(100);
        let (actions, _) = m.poll();
        assert_eq!(
            actions,
            vec![ProbeAction::Ping {
                name: Some("beta".to_string()),
                addr: "http://127.0.0.1:9001".to_string()
            }]
        );
    }

    #[test]
    fn merge_learns_the_full_roster_from_one_digest() {
        let m = member("alpha");
        let events = m.merge_digest(
            "self beta http://b:1 0;alive gamma http://c:2 3;faulty dead http://d:3 1",
        );
        assert_eq!(events.len(), 2, "faulty members do not emit joins");
        let s = states(&m);
        assert_eq!(s["beta"], PeerState::Alive);
        assert_eq!(s["gamma"], PeerState::Alive);
        assert_eq!(s["dead"], PeerState::Faulty, "tombstone recorded");
        // Stale gossip cannot resurrect the tombstone at the same incarnation.
        let events = m.merge_digest("alive dead http://d:3 1");
        assert!(events.is_empty());
        assert_eq!(states(&m)["dead"], PeerState::Faulty);
        // A higher incarnation (the node actually restarted) can.
        let events = m.merge_digest("alive dead http://d:3 2");
        assert_eq!(
            events,
            vec![MembershipEvent::Recovered {
                name: "dead".to_string(),
                addr: "http://d:3".to_string()
            }]
        );
    }

    #[test]
    fn failed_probes_suspect_then_fault_on_the_manual_clock() {
        let m = member("alpha");
        m.merge_digest("self beta http://b:1 0");
        m.on_probe_failed("beta");
        assert_eq!(states(&m)["beta"], PeerState::Suspect);
        // Just before the timeout the suspect is still only a suspect.
        m.advance(399);
        let (_, events) = m.poll();
        assert!(events.is_empty());
        assert_eq!(states(&m)["beta"], PeerState::Suspect);
        // One more millisecond and the verdict lands, exactly once.
        m.advance(1);
        let (_, events) = m.poll();
        assert_eq!(
            events,
            vec![MembershipEvent::Failed {
                name: "beta".to_string()
            }]
        );
        assert_eq!(states(&m)["beta"], PeerState::Faulty);
        let (_, events) = m.poll();
        assert!(events.is_empty(), "the verdict does not repeat");
    }

    #[test]
    fn an_ack_clears_suspicion_before_the_timeout() {
        let m = member("alpha");
        m.merge_digest("self beta http://b:1 0");
        m.on_probe_failed("beta");
        m.advance(399);
        m.on_ack("beta");
        m.advance(1_000);
        let (_, events) = m.poll();
        assert!(events.is_empty());
        assert_eq!(states(&m)["beta"], PeerState::Alive);
    }

    #[test]
    fn suspicion_supersedes_alive_at_the_same_incarnation_only() {
        let m = member("alpha");
        m.merge_digest("self beta http://b:1 4");
        // Gossiped suspicion at the current incarnation sticks...
        m.merge_digest("suspect beta http://b:1 4");
        assert_eq!(states(&m)["beta"], PeerState::Suspect);
        // ...and the refutation (alive at a higher incarnation) clears it.
        let events = m.merge_digest("alive beta http://b:1 5");
        assert_eq!(
            events,
            vec![MembershipEvent::Recovered {
                name: "beta".to_string(),
                addr: "http://b:1".to_string()
            }]
        );
        // Stale suspicion at the old incarnation no longer bites.
        m.merge_digest("suspect beta http://b:1 4");
        assert_eq!(states(&m)["beta"], PeerState::Alive);
    }

    #[test]
    fn being_accused_bumps_the_local_incarnation() {
        let m = member("alpha");
        let before = m.digest();
        assert!(before.starts_with("self alpha "));
        assert!(before.ends_with(" 0"));
        m.merge_digest("suspect alpha http://a:1 0");
        assert!(m.digest().ends_with(" 1"), "refutation carried in digests");
        // An accusation at a stale incarnation is ignored.
        m.merge_digest("faulty alpha http://a:1 0");
        assert!(m.digest().ends_with(" 1"));
    }

    #[test]
    fn data_path_failure_hints_become_suspicion_on_the_next_poll() {
        let m = member("alpha");
        m.merge_digest("self beta http://b:1 0");
        m.note_failure("http://b:1/");
        assert_eq!(states(&m)["beta"], PeerState::Alive, "hint is queued only");
        let _ = m.poll();
        assert_eq!(states(&m)["beta"], PeerState::Suspect);
        // The suspicion then times out like any other.
        m.advance(400);
        let (_, events) = m.poll();
        assert_eq!(
            events,
            vec![MembershipEvent::Failed {
                name: "beta".to_string()
            }]
        );
    }

    #[test]
    fn two_memberships_converge_by_swapping_digests() {
        let a = member("alpha");
        let b = member("beta");
        let c = member("gamma");
        // beta knows gamma; alpha only knows beta.
        b.merge_digest(&c.digest());
        a.merge_digest(&b.digest());
        let s = states(&a);
        assert_eq!(s.len(), 2, "alpha learned gamma transitively: {s:?}");
        assert!(s.contains_key("beta") && s.contains_key("gamma"));
        // And the digests agree on the roster version's purpose: counting.
        assert!(a.stats().roster_version >= 2);
        assert_eq!(a.stats().alive, 3);
    }

    #[test]
    fn probe_rounds_honor_the_interval_and_rotate_targets() {
        let m = member("alpha");
        m.merge_digest("self beta http://b:1 0;alive gamma http://c:2 0");
        let (first, _) = m.poll();
        assert_eq!(first.len(), 1);
        // Not due yet: no probe.
        m.advance(50);
        assert!(m.poll().0.is_empty());
        m.advance(50);
        let (second, _) = m.poll();
        assert_eq!(second.len(), 1);
        assert_ne!(first, second, "round-robin rotates across the roster");
        assert_eq!(m.stats().probes_sent, 2);
    }

    #[test]
    fn relay_candidates_exclude_the_target_and_non_alive_peers() {
        let m = member("alpha");
        m.merge_digest(
            "self beta http://b:1 0;alive gamma http://c:2 0;suspect delta http://d:3 0",
        );
        let relays = m.relay_candidates("beta");
        assert_eq!(relays.len(), 1);
        assert_eq!(relays[0].name, "gamma");
    }
}
