//! Structured overlay network for Na Kika (paper §3.4).
//!
//! Na Kika treats its overlay largely as a black box provided by an existing
//! DHT and builds on Coral, which offers three properties the architecture
//! needs: (1) *sloppy* soft-state storage keyed by URL so that one cached
//! copy anywhere in the network is enough to avoid an origin access, (2)
//! hierarchical locality clusters so lookups prefer nearby nodes, and (3)
//! DNS redirection of clients to nearby edge nodes.
//!
//! This crate implements that substrate from scratch: XOR-metric key-based
//! routing, TTL'd sloppy storage with per-key value limits, Coral-style
//! locality clusters, and a latency-aware redirector.  The interface is
//! deliberately the small `put / get / nodes_for_key / redirect` surface the
//! rest of Na Kika consumes.
//!
//! The registry itself always runs in-process, but it serves two deployment
//! styles:
//!
//! * **Simulated** — the simulator joins thousands of nodes with
//!   [`Overlay::join`] and provides latencies from [`Location`]s; values and
//!   lookups never leave the process.
//! * **Real TCP** — each node process joins the shared roster with
//!   [`Overlay::join_with_addr`], carrying the base URL of its proxy
//!   front-end.  A cache miss asks [`Overlay::owner_of`] for the key's
//!   consistent-hash owner and fetches from that peer over a real socket;
//!   hot entries replicate onto [`Overlay::successors_of`].  See
//!   `docs/CLUSTER.md` in the repository for the operator's guide.
//!
//! # Example: routing a key to its owner
//!
//! ```
//! use nakika_overlay::{key_for, Location, Overlay};
//!
//! let overlay = Overlay::with_defaults();
//! for (name, url) in [
//!     ("edge-a", "http://127.0.0.1:4001"),
//!     ("edge-b", "http://127.0.0.1:4002"),
//!     ("edge-c", "http://127.0.0.1:4003"),
//! ] {
//!     // Deterministic ids derived from names keep every process's view of
//!     // the ring identical.
//!     overlay.join_with_addr(key_for(name), Location::new(0.0, 0.0), url);
//! }
//! let owner = overlay.owner_of("GET http://origin.example/object").unwrap();
//! assert!(owner.addr.unwrap().starts_with("http://127.0.0.1:400"));
//! assert_eq!(overlay.successors_of("GET http://origin.example/object", 2).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dht;
pub mod gossip;
pub mod id;
pub mod redirect;

pub use cluster::{ClusterLevel, Location};
pub use dht::{Member, Overlay, OverlayConfig, OverlayStats, StoredValue};
pub use gossip::{
    GossipStats, Membership, MembershipConfig, MembershipEvent, PeerInfo, PeerState, ProbeAction,
};
pub use id::{key_for, NodeId};
pub use redirect::Redirector;
