//! Structured overlay network for Na Kika (paper §3.4).
//!
//! Na Kika treats its overlay largely as a black box provided by an existing
//! DHT and builds on Coral, which offers three properties the architecture
//! needs: (1) *sloppy* soft-state storage keyed by URL so that one cached
//! copy anywhere in the network is enough to avoid an origin access, (2)
//! hierarchical locality clusters so lookups prefer nearby nodes, and (3)
//! DNS redirection of clients to nearby edge nodes.
//!
//! This crate implements that substrate from scratch: XOR-metric key-based
//! routing, TTL'd sloppy storage with per-key value limits, Coral-style
//! locality clusters, and a latency-aware redirector.  It runs in-process
//! (the simulator provides latencies); the interface is deliberately the
//! small `put / get / nodes_for_key / redirect` surface the rest of Na Kika
//! consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dht;
pub mod id;
pub mod redirect;

pub use cluster::{ClusterLevel, Location};
pub use dht::{Overlay, OverlayConfig, OverlayStats, StoredValue};
pub use id::{key_for, NodeId};
pub use redirect::Redirector;
