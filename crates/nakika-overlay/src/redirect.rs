//! DNS-style redirection of clients to nearby edge nodes.
//!
//! The paper appends `.nakika.net` to URLs so Na Kika's name servers can
//! answer DNS queries with the address of an edge proxy near the client
//! (§3).  Coral provides this as optional functionality; here the redirector
//! sits on top of the overlay's node registry and picks among the closest
//! live nodes, spreading load across the candidate set rather than pinning
//! every client of a region onto one proxy.

use crate::cluster::Location;
use crate::dht::Overlay;
use crate::id::NodeId;
use parking_lot::Mutex;

/// Chooses an edge node for each client request.
pub struct Redirector<'o> {
    overlay: &'o Overlay,
    /// How many nearby candidates to rotate across.
    candidates: usize,
    round_robin: Mutex<usize>,
}

impl<'o> Redirector<'o> {
    /// Creates a redirector that rotates across the `candidates` nearest
    /// nodes (the paper directs clients "to randomly chosen, but close-by
    /// proxies from a preconfigured list").
    pub fn new(overlay: &'o Overlay, candidates: usize) -> Redirector<'o> {
        Redirector {
            overlay,
            candidates: candidates.max(1),
            round_robin: Mutex::new(0),
        }
    }

    /// Picks an edge node for a client at `location`; `None` when the overlay
    /// is empty (clients then fall back to the origin server directly).
    pub fn redirect(&self, location: &Location) -> Option<(NodeId, Location)> {
        let nearest = self.overlay.nearest_nodes(location, self.candidates);
        if nearest.is_empty() {
            return None;
        }
        let mut counter = self.round_robin.lock();
        let choice = nearest[*counter % nearest.len()];
        *counter = counter.wrapping_add(1);
        Some(choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::sites;
    use crate::dht::Overlay;

    #[test]
    fn redirects_to_a_nearby_node() {
        let overlay = Overlay::with_defaults();
        overlay.join(NodeId(1), sites::US_EAST);
        overlay.join(NodeId(2), sites::US_WEST);
        overlay.join(NodeId(3), sites::ASIA);
        let redirector = Redirector::new(&overlay, 1);
        let (id, _) = redirector.redirect(&sites::ASIA).unwrap();
        assert_eq!(id, NodeId(3));
        let (id, _) = redirector.redirect(&sites::US_EAST_LAN).unwrap();
        assert_eq!(id, NodeId(1));
    }

    #[test]
    fn rotates_across_candidates_for_load_balancing() {
        let overlay = Overlay::with_defaults();
        overlay.join(NodeId(1), sites::US_EAST);
        overlay.join(NodeId(2), sites::US_EAST_LAN);
        overlay.join(NodeId(3), sites::ASIA);
        let redirector = Redirector::new(&overlay, 2);
        let picks: Vec<NodeId> = (0..4)
            .map(|_| redirector.redirect(&sites::US_EAST).unwrap().0)
            .collect();
        assert!(picks.contains(&NodeId(1)));
        assert!(picks.contains(&NodeId(2)));
        assert!(!picks.contains(&NodeId(3)));
    }

    #[test]
    fn empty_overlay_yields_none() {
        let overlay = Overlay::with_defaults();
        let redirector = Redirector::new(&overlay, 3);
        assert!(redirector.redirect(&sites::US_EAST).is_none());
    }
}
