//! Minimal offline stand-in for the `serde` crate (see vendor/README.md).
//!
//! Nothing in this workspace serializes yet — the `#[derive(serde::Serialize,
//! serde::Deserialize)]` attributes on HTTP and overlay types exist so wire
//! formats can be added later without touching those files. This shim keeps
//! them compiling: the derive macros are no-ops and the traits are satisfied
//! by blanket impls, so `T: Serialize` bounds also keep working.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
