//! Minimal offline stand-in for the `bytes` crate (see vendor/README.md).
//!
//! Provides a cheaply clonable, immutable byte buffer with the subset of the
//! real [`Bytes`] API this workspace uses. Static slices are stored without
//! allocating; owned data is reference-counted, so `clone()` is O(1) either
//! way — the property the HTTP body layer relies on to stream chunks through
//! the scripting pipeline without copying.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without allocating.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Copies `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a sub-slice of this buffer as a new `Bytes` (copies the range).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        Bytes::copy_from_slice(&self.as_slice()[start..end])
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_agree() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.slice(1..3).to_vec(), b"el".to_vec());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Bytes::new().is_empty());
    }
}
