//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` shim (see vendor/README.md).
//!
//! The shim's `Serialize` / `Deserialize` traits carry blanket impls, so the
//! derives have nothing to generate; they exist so `#[derive(serde::Serialize,
//! serde::Deserialize)]` attributes across the workspace keep compiling
//! unchanged until the real `serde` is reachable again.

use proc_macro::TokenStream;

/// Accepts and discards the annotated item; the shim's blanket impl already
/// covers it.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards the annotated item; the shim's blanket impl already
/// covers it.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
