//! Minimal offline stand-in for the `parking_lot` crate (see vendor/README.md).
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s non-poisoning
//! API: `lock()` / `read()` / `write()` return guards directly instead of a
//! `Result`. A poisoned lock (a panic while holding the guard) is recovered
//! rather than propagated, matching `parking_lot`'s behavior of not tracking
//! poison at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual exclusion primitive with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
            assert!(l.try_write().is_none());
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
