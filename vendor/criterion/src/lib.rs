//! Minimal offline stand-in for the `criterion` crate (see vendor/README.md).
//!
//! Supports the bench surface this workspace uses — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! measure-and-report loop: warm up, estimate the per-iteration cost, then
//! time enough iterations to fill the configured measurement window and print
//! the mean. No statistics, outlier analysis, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// How the binary was invoked (parsed from CLI args by [`criterion_main!`]).
#[derive(Debug, Clone, Default)]
pub struct RunMode {
    /// Substring filters; empty means "run everything".
    pub filters: Vec<String>,
    /// When set, run each benchmark exactly once (cargo's `--test` smoke mode).
    pub test_mode: bool,
    /// When set, only print benchmark names (`--list`).
    pub list_mode: bool,
}

impl RunMode {
    /// Parses loosely: flags are recognized or ignored, bare words are filters.
    pub fn from_args() -> RunMode {
        let mut mode = RunMode::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode.test_mode = true,
                "--list" => mode.list_mode = true,
                _ if arg.starts_with('-') => {}
                _ => mode.filters.push(arg),
            }
        }
        mode
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    mode: RunMode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            mode: RunMode::from_args(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the wall-clock budget for each benchmark in the group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the number of samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let full_name = self.full_name(&id.into());
        if !self.criterion.mode.selected(&full_name) {
            return;
        }
        if self.criterion.mode.list_mode {
            println!("{full_name}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            budget: if self.criterion.mode.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&full_name);
    }

    /// Runs one benchmark that borrows a shared input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (the shim reports eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn full_name(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        }
    }
}

/// Times a closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly within the configured budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + cost estimate from a single timed call.
        let start = Instant::now();
        black_box(routine());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget / self.samples.max(1) as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.budget;
        let mut total = probe;
        let mut iters = 1u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.total = total;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no measurement)");
            return;
        }
        let mean_ns = self.total.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if mean_ns >= 1_000_000.0 {
            (mean_ns / 1_000_000.0, "ms")
        } else if mean_ns >= 1_000.0 {
            (mean_ns / 1_000.0, "µs")
        } else {
            (mean_ns, "ns")
        };
        println!(
            "{name:<50} {value:>10.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            mode: RunMode::default(),
        };
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filters_select_by_substring() {
        let mode = RunMode {
            filters: vec!["cache".into()],
            ..RunMode::default()
        };
        assert!(mode.selected("node/cache_hit"));
        assert!(!mode.selected("node/parse"));
    }
}
