//! The [`Strategy`] trait and implementations for regex string literals,
//! integer ranges, tuples, and constants.

use crate::regex::Pattern;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
///
/// The real trait builds shrinkable value trees; this shim samples directly.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// String literals are regex strategies: `"[a-z]{1,10}"` generates strings
/// matching the pattern (see [`crate::regex`] for the supported subset).
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        Pattern::parse(self)
            .unwrap_or_else(|e| panic!("proptest shim: bad regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_u64(self.start as u64, self.end as u64 - 1) as $ty
            }
        }
    )*};
}

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i64(self.start as i64, self.end as i64 - 1) as $ty
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
