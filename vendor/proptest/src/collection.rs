//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range for vec strategy");
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range_u64(self.len.start as u64, self.len.end as u64 - 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
