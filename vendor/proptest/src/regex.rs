//! A *generating* interpreter for the subset of regex syntax the property
//! tests use as string strategies.
//!
//! Supported: literal characters, escapes (`\.`, `\\`, `\d`, `\w`, `\s`),
//! character classes with ranges (`[a-zA-Z0-9 ;=/_.-]`), groups with
//! alternation (`(com|org|edu)`), and the quantifiers `{m}`, `{m,n}`, `{m,}`,
//! `?`, `*`, `+`. Unbounded quantifiers are capped at `min + 8` repetitions.
//! Anything else is a parse error so tests fail loudly instead of generating
//! wrong data.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// A parsed generating pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    alternatives: Vec<Vec<Quantified>>,
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Pattern),
}

impl Pattern {
    /// Parses `pattern`, rejecting unsupported syntax.
    pub fn parse(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let parsed = parse_alternation(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at offset {pos}", chars[pos]));
        }
        Ok(parsed)
    }

    /// Generates one string matching the pattern.
    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.sample_into(rng, &mut out);
        out
    }

    fn sample_into(&self, rng: &mut TestRng, out: &mut String) {
        let branch = &self.alternatives[rng.below(self.alternatives.len() as u64) as usize];
        for quantified in branch {
            let reps = rng.in_range_u64(quantified.min as u64, quantified.max as u64);
            for _ in 0..reps {
                match &quantified.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::Group(inner) => inner.sample_into(rng, out),
                }
            }
        }
    }
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).expect("range within char space");
        }
        pick -= span;
    }
    unreachable!("pick is bounded by the total class size")
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Result<Pattern, String> {
    let mut alternatives = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alternatives.push(Vec::new());
            }
            _ => {
                let atom = parse_atom(chars, pos)?;
                let (min, max) = parse_quantifier(chars, pos)?;
                alternatives
                    .last_mut()
                    .expect("alternatives is never empty")
                    .push(Quantified { atom, min, max });
            }
        }
    }
    Ok(Pattern { alternatives })
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '(' => {
            let inner = parse_alternation(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unclosed group".into());
            }
            *pos += 1;
            Ok(Atom::Group(inner))
        }
        '[' => parse_class(chars, pos),
        '\\' => {
            let escaped = *chars.get(*pos).ok_or("dangling escape")?;
            *pos += 1;
            Ok(match escaped {
                'd' => Atom::Class(vec![('0', '9')]),
                'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                's' => Atom::Class(vec![(' ', ' '), ('\t', '\t')]),
                other => Atom::Literal(other),
            })
        }
        '.' => Err("`.` is unsupported; use an explicit class".into()),
        '*' | '+' | '?' | '{' => Err(format!("quantifier `{c}` with nothing to repeat")),
        other => Ok(Atom::Literal(other)),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    if chars.get(*pos) == Some(&'^') {
        return Err("negated classes are unsupported".into());
    }
    let mut ranges = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut lo = chars[*pos];
        *pos += 1;
        if lo == '\\' {
            lo = *chars.get(*pos).ok_or("dangling escape in class")?;
            *pos += 1;
        }
        // `a-z` is a range unless `-` is the last char before `]`.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            *pos += 1;
            let mut hi = chars[*pos];
            *pos += 1;
            if hi == '\\' {
                hi = *chars.get(*pos).ok_or("dangling escape in class")?;
                *pos += 1;
            }
            if hi < lo {
                return Err(format!("inverted class range `{lo}-{hi}`"));
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    if *pos >= chars.len() {
        return Err("unclosed character class".into());
    }
    *pos += 1; // consume `]`
    if ranges.is_empty() {
        return Err("empty character class".into());
    }
    Ok(Atom::Class(ranges))
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok((0, UNBOUNDED_CAP))
        }
        Some('+') => {
            *pos += 1;
            Ok((1, 1 + UNBOUNDED_CAP))
        }
        Some('{') => {
            *pos += 1;
            let min = parse_number(chars, pos)?;
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'}') {
                        min + UNBOUNDED_CAP
                    } else {
                        parse_number(chars, pos)?
                    }
                }
                _ => min,
            };
            if chars.get(*pos) != Some(&'}') {
                return Err("unclosed `{` quantifier".into());
            }
            *pos += 1;
            if max < min {
                return Err(format!("quantifier {{{min},{max}}} is inverted"));
            }
            Ok((min, max))
        }
        _ => Ok((1, 1)),
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<u32, String> {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == start {
        return Err("expected a number in quantifier".into());
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .map_err(|e| format!("bad quantifier number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("regex-tests", 0)
    }

    #[test]
    fn class_and_quantifier() {
        let p = Pattern::parse("[a-c]{2,4}").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let s = p.sample(&mut r);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn group_alternation_and_escape() {
        let p = Pattern::parse("[a-z]{1,3}\\.(com|org|edu)").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let s = p.sample(&mut r);
            let (head, tld) = s.split_once('.').expect("has a dot");
            assert!((1..=3).contains(&head.len()));
            assert!(matches!(tld, "com" | "org" | "edu"), "{tld:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let p = Pattern::parse("[a-z0-9_-]{1,12}").unwrap();
        let mut r = rng();
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = p.sample(&mut r);
            saw_dash |= s.contains('-');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
        assert!(saw_dash, "dash should be generated as a literal");
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(Pattern::parse("a.b").is_err());
        assert!(Pattern::parse("[^a]").is_err());
        assert!(Pattern::parse("(a").is_err());
        assert!(Pattern::parse("a{3,1}").is_err());
    }
}
