//! Test configuration and the deterministic per-case RNG.

/// Mirror of `proptest::test_runner::Config` (the subset used).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG: every case's stream is a pure function of the test
/// name and case index, so failures reproduce without a persisted seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform draw from the inclusive signed range `[lo, hi]`.
    pub fn in_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            self.next_u64() as i64
        } else {
            (lo as i128 + self.below(span + 1) as i128) as i64
        }
    }
}
