//! The [`any`] entry point and [`Arbitrary`] impls, mirroring
//! `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
