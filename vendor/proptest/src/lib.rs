//! Minimal offline stand-in for the `proptest` crate (see vendor/README.md).
//!
//! Covers the surface the workspace's property tests use: the [`proptest!`]
//! macro, strategies built from regex string literals (a generating subset of
//! regex syntax), integer ranges, tuples, [`collection::vec`], and
//! [`arbitrary::any`], plus the `prop_assert*` family. Unlike the real crate
//! there is **no shrinking**: a failing case reports its case number and the
//! values are reproducible because every case's RNG is derived purely from
//! the test name and case index.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prop` module alias (e.g. `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the two forms the workspace uses: with a leading
/// `#![proptest_config(...)]` inner attribute, and without.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest shim: `{}` failed at case {}/{} (deterministic; rerun reproduces it)",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn segment() -> impl Strategy<Value = String> {
        "[a-z0-9_-]{1,12}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn regex_strategies_respect_their_pattern(
            host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
            seg in segment(),
            tld in "[a-z]{1,8}\\.(com|org|edu)",
        ) {
            prop_assert!(host.contains('.'));
            prop_assert!(host.chars().all(|c| c.is_ascii_lowercase() || c == '.'));
            prop_assert!((1..=12).contains(&seg.len()));
            let suffix = tld.rsplit('.').next().unwrap();
            prop_assert!(matches!(suffix, "com" | "org" | "edu"));
        }

        #[test]
        fn ranges_vecs_and_tuples_stay_in_bounds(
            n in 200u16..599,
            bytes in prop::collection::vec(any::<u8>(), 0..256),
            pairs in prop::collection::vec((segment(), 1usize..4000), 1..30),
        ) {
            prop_assert!((200..599).contains(&n));
            prop_assert!(bytes.len() < 256);
            prop_assert!((1..30).contains(&pairs.len()));
            for (seg, size) in &pairs {
                prop_assert!(!seg.is_empty());
                prop_assert!((1..4000).contains(size));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let sample = |case| {
            let mut rng = TestRng::for_case("determinism", case);
            "[a-z]{1,10}".sample(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(0), sample(1));
    }
}
