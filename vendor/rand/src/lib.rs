//! Minimal offline stand-in for the `rand` crate, 0.8 API (see
//! vendor/README.md).
//!
//! Implements the subset the workload generators use: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is SplitMix64 — statistically fine for synthetic workloads,
//! **not** cryptographic (neither is the real `StdRng`'s contract here:
//! the simulator only needs reproducible streams).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(..)`).
pub trait SampleRange {
    /// The value type the range produces.
    type Output;

    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans the simulator uses.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64) standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
