#!/usr/bin/env python3
"""Compare two BENCH_proxy.json files and fail on throughput regressions.

Usage: compare_bench.py BASELINE CURRENT [--threshold PCT]

Scenarios are matched by (name, transport) — currently cold-cache,
warm-keepalive, warm-close, warm-concurrent, bench_stream, bench_mixed,
bench_peer, bench_scripted and bench_scripted_interp on threaded and
reactor (docs/BENCHMARKING.md describes each).  A scenario
present in the baseline but slower in the current run by more than the
threshold (default 25%) fails the check; new scenarios (no baseline) and
removed ones only inform.  CI wires this against the previous successful
run's artifact (see the "perf trajectory" item in ROADMAP.md).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (s["name"], s["transport"]): float(s["requests_per_sec"])
        for s in doc.get("scenarios", [])
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum tolerated throughput drop, in percent (default 25)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    print(f"{'scenario':<18} {'transport':<10} {'baseline':>12} {'current':>12} {'delta':>8}")
    for key in sorted(baseline):
        name, transport = key
        base_rps = baseline[key]
        if key not in current:
            print(f"{name:<18} {transport:<10} {base_rps:>12.0f} {'(removed)':>12} {'-':>8}")
            continue
        cur_rps = current[key]
        delta_pct = (cur_rps - base_rps) / base_rps * 100.0 if base_rps > 0 else 0.0
        marker = ""
        if delta_pct < -args.threshold:
            failures.append((name, transport, base_rps, cur_rps, delta_pct))
            marker = "  << REGRESSION"
        print(
            f"{name:<18} {transport:<10} {base_rps:>12.0f} {cur_rps:>12.0f} "
            f"{delta_pct:>+7.1f}%{marker}"
        )
    for key in sorted(set(current) - set(baseline)):
        name, transport = key
        print(f"{name:<18} {transport:<10} {'(new)':>12} {current[key]:>12.0f} {'-':>8}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} scenario(s) regressed by more than "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, transport, base_rps, cur_rps, delta_pct in failures:
            print(
                f"  {name}/{transport}: {base_rps:.0f} -> {cur_rps:.0f} rps "
                f"({delta_pct:+.1f}%)",
                file=sys.stderr,
            )
        return 1
    print(f"\nOK: no scenario regressed by more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
