#!/usr/bin/env python3
"""Compare two BENCH_proxy.json files and fail on performance regressions.

Usage: compare_bench.py BASELINE CURRENT [--threshold PCT] [--p99-threshold PCT]

Scenarios are matched by (name, transport) — currently cold-cache,
warm-keepalive, warm-close, warm-concurrent, bench_stream, bench_mixed,
bench_peer, bench_scripted and bench_scripted_interp on threaded and
reactor, plus the reactor-splice rows (cold-cache, bench_stream,
bench_mixed with the event-loop origin splice enabled; the plain
reactor rows pin splice off so they keep measuring the worker-pool
offload path) — docs/BENCHMARKING.md describes each.  Two gates:

* throughput: a scenario slower than the baseline by more than
  --threshold (default 25%) fails the check;
* tail latency: a scenario whose p99_us grew by more than
  --p99-threshold (default 25%) fails the check.  Baselines recorded
  before latency fields existed (no p99_us key) are tolerated — the
  latency gate simply doesn't apply until a baseline carries them.

New scenarios (no baseline) and removed ones only inform.  CI wires
this against the previous successful run's artifact (see the "perf
trajectory" item in ROADMAP.md).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for s in doc.get("scenarios", []):
        p99 = s.get("p99_us")
        out[(s["name"], s["transport"])] = {
            "rps": float(s["requests_per_sec"]),
            "p99_us": float(p99) if p99 is not None else None,
        }
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum tolerated throughput drop, in percent (default 25)",
    )
    parser.add_argument(
        "--p99-threshold",
        type=float,
        default=25.0,
        help="maximum tolerated p99 latency increase, in percent (default 25)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []

    def fmt_p99(v):
        return f"{v:.0f}" if v is not None else "-"

    print(
        f"{'scenario':<18} {'transport':<10} {'baseline':>12} {'current':>12} "
        f"{'delta':>8} {'p99 base':>10} {'p99 cur':>10} {'p99 delta':>10}"
    )
    for key in sorted(baseline):
        name, transport = key
        base = baseline[key]
        if key not in current:
            print(
                f"{name:<18} {transport:<10} {base['rps']:>12.0f} {'(removed)':>12} "
                f"{'-':>8} {'-':>10} {'-':>10} {'-':>10}"
            )
            continue
        cur = current[key]
        delta_pct = (
            (cur["rps"] - base["rps"]) / base["rps"] * 100.0 if base["rps"] > 0 else 0.0
        )
        marker = ""
        if delta_pct < -args.threshold:
            failures.append(
                (name, transport, "throughput",
                 f"{base['rps']:.0f} -> {cur['rps']:.0f} rps ({delta_pct:+.1f}%)")
            )
            marker = "  << REGRESSION"

        # The p99 gate only applies when both sides recorded latency.
        p99_base, p99_cur = base["p99_us"], cur["p99_us"]
        p99_delta = "-"
        if p99_base is not None and p99_cur is not None and p99_base > 0:
            p99_delta_pct = (p99_cur - p99_base) / p99_base * 100.0
            p99_delta = f"{p99_delta_pct:+.1f}%"
            if p99_delta_pct > args.p99_threshold:
                failures.append(
                    (name, transport, "p99 latency",
                     f"{p99_base:.0f} -> {p99_cur:.0f} us ({p99_delta_pct:+.1f}%)")
                )
                marker = "  << REGRESSION"
        print(
            f"{name:<18} {transport:<10} {base['rps']:>12.0f} {cur['rps']:>12.0f} "
            f"{delta_pct:>+7.1f}% {fmt_p99(p99_base):>10} {fmt_p99(p99_cur):>10} "
            f"{p99_delta:>10}{marker}"
        )
    for key in sorted(set(current) - set(baseline)):
        name, transport = key
        print(
            f"{name:<18} {transport:<10} {'(new)':>12} {current[key]['rps']:>12.0f} "
            f"{'-':>8} {'-':>10} {fmt_p99(current[key]['p99_us']):>10} {'-':>10}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} regression(s) past the thresholds "
            f"(throughput {args.threshold:.0f}%, p99 {args.p99_threshold:.0f}%):",
            file=sys.stderr,
        )
        for name, transport, kind, detail in failures:
            print(f"  {name}/{transport} [{kind}]: {detail}", file=sys.stderr)
        return 1
    print(
        f"\nOK: no scenario regressed past the thresholds "
        f"(throughput {args.threshold:.0f}%, p99 {args.p99_threshold:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
