//! The §5.4 cell-phone extension: transcode images on the edge so they fit a
//! Nokia phone's 176x208 screen, selected by the `User-Agent` header and
//! caching the transformed content (the paper's Figure 2 generalised).
//!
//! ```text
//! cargo run --example mobile_transcode
//! ```

use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::vocab::make_image;
use nakika_core::{scripts, NodeBuilder};
use nakika_http::{Request, Response, StatusCode};

fn main() {
    // The photo site's origin: large PNG "photos" plus a nakika.js carrying
    // the transcoding extension.
    let edge = NodeBuilder::scripted("photo-edge")
        .origin_fn(|request: &Request| match request.uri.path.as_str() {
            "/nakika.js" => Response::ok("application/javascript", scripts::IMAGE_TRANSCODER)
                .with_header("Cache-Control", "max-age=300"),
            path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            _ => Response::ok("image/png", make_image("png", 1600, 1200))
                .with_header("Cache-Control", "max-age=600"),
        })
        .build();

    // A desktop browser gets the original image untouched.
    let desktop = Request::get("http://photos.example.org/vacation.png")
        .with_header("User-Agent", "Mozilla/5.0 (X11; Linux x86_64)");
    let full = edge.call(desktop, &RequestCtx::at(10)).unwrap();
    println!(
        "desktop  -> {} {} ({} bytes)",
        full.status,
        full.content_type(),
        full.body.len()
    );
    assert_eq!(full.content_type(), "image/png");

    // A Nokia phone gets a scaled-down JPEG.
    let phone = Request::get("http://photos.example.org/vacation.png")
        .with_header("User-Agent", "Nokia6600/1.0 (Series60)");
    let small = edge.call(phone.clone(), &RequestCtx::at(20)).unwrap();
    println!(
        "phone    -> {} {} ({} bytes)",
        small.status,
        small.content_type(),
        small.body.len()
    );
    assert_eq!(small.content_type(), "image/jpeg");
    assert!(
        small.body.len() < full.body.len(),
        "transcoded image is smaller"
    );

    // The transformed content was cached by the script, so a second phone
    // request does not re-transcode.
    let again = edge.call(phone, &RequestCtx::at(30)).unwrap();
    assert_eq!(again.content_type(), "image/jpeg");
    println!(
        "cached   -> {} {} ({} bytes)",
        again.status,
        again.content_type(),
        again.body.len()
    );
    println!("\nstats: {:?}", edge.node().stats());
}
