//! A bucket-brigade proxy chain relaying a large response with bounded
//! memory.
//!
//! The paper's motivating workload is large multimedia instances flowing
//! through composed edge proxies.  This example stands up a three-hop chain
//!
//! ```text
//! client  <-  edge B  <-  edge A  <-  origin (64 MiB, generated on the fly)
//! ```
//!
//! where every hop runs the v2 streaming `Body` path: the origin emits the
//! instance chunk by chunk, each edge relays chunks as they arrive (teeing
//! nothing into its deliberately tiny cache — the instance exceeds the entry
//! budget), and the client drains the stream while verifying the byte
//! pattern.  At no point does any process hold more than one bounded output
//! window (256 KiB) of the body per connection; the instrumented high-water
//! mark printed at the end proves it.
//!
//! Run with `cargo run --release --example streaming_brigade`.

use bytes::Bytes;
use nakika_core::service::{service_fn, NakikaError, RequestCtx};
use nakika_core::{NodeBuilder, OriginFetch};
use nakika_http::{ChunkSource, Request, Response, STREAM_CHUNK_BYTES};
use nakika_server::{
    http_fetch_streaming_via_proxy, HttpServer, ProxyServer, TcpOrigin, Transport,
    OUTPUT_WINDOW_BYTES,
};
use std::net::SocketAddr;
use std::sync::Arc;

/// Size of the relayed instance: 64 MiB, far beyond every buffer budget in
/// the chain.
const INSTANCE_BYTES: usize = 64 * 1024 * 1024;

fn pattern_byte(i: usize) -> u8 {
    ((i * 31 + i / 251) % 251) as u8
}

/// Generates the instance chunk by chunk — the origin never holds it whole.
struct PatternSource {
    produced: usize,
}

impl ChunkSource for PatternSource {
    fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
        if self.produced >= INSTANCE_BYTES {
            return Ok(None);
        }
        let n = (INSTANCE_BYTES - self.produced).min(STREAM_CHUNK_BYTES);
        let chunk: Vec<u8> = (self.produced..self.produced + n)
            .map(pattern_byte)
            .collect();
        self.produced += n;
        Ok(Some(Bytes::from(chunk)))
    }
}

/// An [`OriginFetch`] whose upstream is *another proxy*: the middle link of
/// the brigade.  It opens a streaming exchange through the next hop, so
/// chunks flow through this node exactly as they arrive.
struct NextHop {
    proxy: SocketAddr,
}

impl OriginFetch for NextHop {
    fn fetch_origin(&self, request: &Request) -> Response {
        match http_fetch_streaming_via_proxy(self.proxy, request) {
            Ok(response) => response,
            Err(error) => error.to_response(),
        }
    }
}

fn main() -> Result<(), NakikaError> {
    fn fail(context: &'static str) -> impl Fn(std::io::Error) -> NakikaError {
        move |e| NakikaError::Internal(format!("{context}: {e}"))
    }

    // Origin: streams the instance with a declared length.
    let origin = HttpServer::start(
        0,
        service_fn(|_req: Request, _ctx: &RequestCtx| {
            Ok(Response::ok_stream(
                "video/mpeg",
                PatternSource { produced: 0 },
                Some(INSTANCE_BYTES as u64),
            )
            .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .map_err(fail("origin failed to start"))?;

    // Edge A fronts the origin over TCP; edge B's "origin" is edge A.  Both
    // caches are 1 MiB, so the 64 MiB instance streams through uncached
    // (over the entry budget) instead of being buffered for admission.
    let edge_a = NodeBuilder::plain_proxy("edge-a")
        .cache_capacity_bytes(1024 * 1024)
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy_a = ProxyServer::start_with(0, edge_a.service(), Transport::Threaded)
        .map_err(fail("edge A failed to start"))?;

    let edge_b = NodeBuilder::plain_proxy("edge-b")
        .cache_capacity_bytes(1024 * 1024)
        .origin(Arc::new(NextHop {
            proxy: proxy_a.addr(),
        }))
        .build();
    let proxy_b = ProxyServer::start_with(0, edge_b.service(), Transport::Reactor)
        .map_err(fail("edge B failed to start"))?;

    println!(
        "brigade: client <- edge B ({}) <- edge A ({}) <- origin ({})",
        proxy_b.addr(),
        proxy_a.addr(),
        origin.addr()
    );
    println!(
        "relaying a {} MiB instance with a {} KiB output window per connection...",
        INSTANCE_BYTES / (1024 * 1024),
        OUTPUT_WINDOW_BYTES / 1024
    );

    let url = format!("{}/feature.mpg", origin.base_url());
    let mut response = http_fetch_streaming_via_proxy(proxy_b.addr(), &Request::get(&url))?;
    assert!(response.status.is_success(), "status {}", response.status);

    // Drain and verify the stream without ever materializing it.
    let mut offset = 0usize;
    let mut body = std::mem::take(&mut response.body);
    while let Some(chunk) = body.read_chunk().map_err(|e| NakikaError::Upstream {
        url: url.clone(),
        reason: format!("body stream failed: {e}"),
    })? {
        for (i, byte) in chunk.iter().enumerate() {
            assert_eq!(
                *byte,
                pattern_byte(offset + i),
                "corrupt byte at {}",
                offset + i
            );
        }
        offset += chunk.len();
    }
    assert_eq!(offset, INSTANCE_BYTES, "short instance: {offset}");

    // Every server carries its own high-water gauge; the brigade's peak is
    // the worst connection across the three of them.
    let peak = origin
        .peak_buffered_output()
        .max(proxy_a.peak_buffered_output())
        .max(proxy_b.peak_buffered_output());
    println!(
        "relayed {offset} bytes intact through two edges; peak buffered output \
         across every connection in the brigade: {peak} bytes"
    );
    assert!(
        peak <= OUTPUT_WINDOW_BYTES,
        "peak {peak} exceeded the bounded window"
    );
    // Neither edge admitted the oversized instance into its cache.
    assert_eq!(edge_a.node().cache_stats().inserts, 0);
    assert_eq!(edge_b.node().cache_stats().inserts, 0);
    println!("bounded-memory bucket brigade: OK");
    Ok(())
}
