//! The paper's motivating scenario (§1, §5.2, §5.4): a web-based medical
//! education environment served through Na Kika, with a third party layering
//! an electronic-annotations service on top of the medical school's content
//! by dynamically scheduling extra pipeline stages — all over real TCP
//! sockets on localhost.
//!
//! ```text
//! cargo run --example medical_cdn
//! ```

use nakika_core::service::service_fn;
use nakika_core::{scripts, NodeBuilder};
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{http_get_via_proxy, HttpServer, ProxyServer, TcpOrigin};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The medical school's origin server --------------------------------
    // It serves lecture XML and a nakika.js that (a) renders XML to HTML on
    // the edge and (b) schedules the annotation service's stage.
    let origin = HttpServer::start(
        0,
        service_fn(|request: Request, _ctx| {
            Ok(match request.uri.path.as_str() {
            "/nakika.js" => Response::ok(
                "application/javascript",
                r#"
                p = new Policy();
                p.nextStages = ["http://127.0.0.1/annotations.js"];
                p.onResponse = function() {
                    if (Response.contentType != 'text/xml') { return; }
                    var buff = null, body = new ByteArray();
                    while (buff = Response.read()) { body.append(buff); }
                    var html = Xml.toHtml(body.toString());
                    Response.setHeader('Content-Type', 'text/html');
                    Response.setHeader('Content-Length', html.length);
                    Response.write(html);
                };
                p.register();
                "#,
            )
            .with_header("Cache-Control", "max-age=300"),
            path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            path if path.starts_with("/simm/") => Response::ok(
                "text/xml",
                format!(
                    "<lecture><title>Module {path}</title><body>workup, treatment, follow-up</body></lecture>"
                ),
            )
            .with_header("Cache-Control", "max-age=60"),
            _ => Response::error(StatusCode::NOT_FOUND),
        })
        }),
    )?;

    // --- The annotation service (a different organisation) -----------------
    // Its stage injects a post-it-notes widget into the rendered HTML.
    let annotations = HttpServer::start(
        0,
        service_fn(|request: Request, _ctx| {
            Ok(if request.uri.path == "/annotations.js" {
                Response::ok("application/javascript", scripts::ANNOTATIONS)
                    .with_header("Cache-Control", "max-age=300")
            } else {
                Response::error(StatusCode::NOT_FOUND)
            })
        }),
    )?;

    // --- The Na Kika edge node ----------------------------------------------
    // Its origin fetch path goes over outbound TCP with keep-alive pooling.
    let edge = NodeBuilder::scripted("medical-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy = ProxyServer::start(0, edge.service())?;

    // The annotation stage URL in nakika.js points at 127.0.0.1 without a
    // port; rewrite requests by asking for the real annotation server URL.
    // (In a deployment both services use real DNS names.)
    let lecture_url = format!("{}/simm/appendicitis", origin.base_url());
    println!("origin:      {}", origin.base_url());
    println!("annotations: {}", annotations.base_url());
    println!("proxy:       http://{}\n", proxy.addr());

    let response = http_get_via_proxy(proxy.addr(), &lecture_url)?;
    println!("GET {lecture_url} via Na Kika -> {}", response.status);
    let body = response.body.to_text();
    println!(
        "rendered body ({} bytes):\n{}\n",
        body.len(),
        &body[..body.len().min(400)]
    );
    assert!(
        body.contains("<div class=\"lecture\">"),
        "XML was rendered to HTML on the edge"
    );

    // Second access is served from the edge cache.
    let again = http_get_via_proxy(proxy.addr(), &lecture_url)?;
    assert_eq!(again.status, StatusCode::OK);
    let stats = edge.node().stats();
    println!(
        "node stats: {} requests, {} cache hits, {} origin fetches, {} script errors",
        stats.requests, stats.cache_hits, stats.origin_fetches, stats.script_errors
    );
    Ok(())
}
