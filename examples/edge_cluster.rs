//! A three-node cooperative edge cluster over real TCP.
//!
//! Run with:
//!
//! ```text
//! cargo run --example edge_cluster
//! ```
//!
//! The parent process starts an origin server, then re-invokes itself
//! three times with `--node NAME` — one OS process per edge node, exactly
//! as a real deployment would run them (see `docs/CLUSTER.md`).  The
//! nodes find each other through gossip: only the first node's address is
//! ever configured (each later node gets a single `--join` seed), and the
//! roster converges on its own through the membership exchange.  Once the
//! parent sees every node report three alive members, it demonstrates the
//! cooperative data path:
//!
//! 1. a page is fetched through one node (cold miss → origin);
//! 2. the same page is fetched through the other two, each answering its
//!    local miss from the first node's cache over TCP — the origin sees
//!    exactly one fetch however many nodes serve the page;
//! 3. every node's counters are printed from its `/__nakika/stats`
//!    endpoint.

use nakika_bench::cluster::{node_main, spawn_gossip_cluster, wait_for_members};
use nakika_core::service::service_fn;
use nakika_http::{Request, Response};
use nakika_server::{http_get_via_proxy, HttpServer};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--node") {
        // Child mode: run one edge node until the parent closes our stdin.
        if let Err(message) = node_main(args.into_iter().skip(2)) {
            eprintln!("edge_cluster node: {message}");
            std::process::exit(2);
        }
        return;
    }

    let origin_hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&origin_hits);
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(Response::ok(
                "text/html",
                format!(
                    "<html><body>the one true copy of {}</body></html>",
                    req.uri.path
                ),
            )
            .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin failed to start");
    println!("origin server   -> {}", origin.base_url());

    let program = std::env::current_exe().expect("current executable path");
    let nodes = spawn_gossip_cluster(
        &program,
        &["--node"],
        &["tokyo", "reykjavik", "lima"],
        &["--replicate", "1", "--threshold", "2"],
    )
    .expect("cluster failed to start");
    for node in &nodes {
        println!("edge {:<10} -> {}", node.name, node.base_url);
    }

    // Only tokyo's address was ever configured; wait for gossip to teach
    // every node the full three-member roster.
    let urls: Vec<String> = nodes.iter().map(|n| n.base_url.clone()).collect();
    let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
    wait_for_members(&url_refs, 3, Duration::from_secs(30)).expect("gossip roster never converged");
    println!("gossip roster converged: every node sees 3 alive members");

    let url = format!("{}/articles/today.html", origin.base_url());
    println!("\nGET {url} via tokyo (cluster-wide cold miss; the key's owner fetches the origin):");
    let first = http_get_via_proxy(proxy_addr(&nodes[0].base_url), &url)
        .expect("fetch via tokyo")
        .body
        .to_bytes();
    println!("  {}", String::from_utf8_lossy(&first));

    println!("\nthe same page via every node (misses answered by a peer, not the origin):");
    for node in &nodes {
        let body = http_get_via_proxy(proxy_addr(&node.base_url), &url)
            .expect("fetch via node")
            .body
            .to_bytes();
        assert_eq!(body, first, "every node must serve identical bytes");
        println!("  {:<10} served {} identical bytes", node.name, body.len());
    }
    println!(
        "\norigin fetches for the page: {} (for {} client requests)",
        origin_hits.load(Ordering::SeqCst),
        1 + nodes.len()
    );

    println!("\nper-node counters (from each node's /__nakika/stats):");
    println!(
        "  {:<10} {:>8} {:>10} {:>9} {:>11} {:>13} {:>6}",
        "node", "requests", "cache_hits", "peer_hits", "peer_misses", "origin_fetch", "alive"
    );
    for node in &nodes {
        let stats = node.stats().expect("node stats");
        println!(
            "  {:<10} {:>8} {:>10} {:>9} {:>11} {:>13} {:>6}",
            node.name,
            stats["requests"],
            stats["cache_hits"],
            stats["peer_hits"],
            stats["peer_misses"],
            stats["origin_fetches"],
            stats["gossip_alive"],
        );
    }
    println!("\ncluster shutting down (stdin EOF to every node)");
}

fn proxy_addr(base_url: &str) -> SocketAddr {
    base_url
        .strip_prefix("http://")
        .expect("http base url")
        .parse()
        .expect("socket address")
}
