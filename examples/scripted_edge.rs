//! Scripted edge: the full Na Kika pipeline — walls, a site `nakika.js`,
//! the bytecode VM, and the compiled-program cache — over real localhost
//! TCP on the reactor transport.
//!
//! The site script registers two policies: an API route whose `onRequest`
//! *generates* the response on the edge (the origin is never contacted),
//! and a catch-all `onResponse` that stamps every proxied page (per stage
//! only the closest-matching policy runs, so the stamp covers everything
//! *except* the API route).  Once the
//! stages are compiled and cached, the node classifies the no-fetch
//! generated route as `Inline` — the whole scripted exchange runs on the
//! reactor's event loop, no worker hand-off — while cold or fetch-capable
//! work still parks and offloads.
//!
//! ```text
//! cargo run --example scripted_edge
//! ```

use nakika_core::service::{service_fn, DispatchHint};
use nakika_core::{scripts, NodeBuilder};
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{HttpServer, ProxyClient, ProxyServer, TcpOrigin, Transport};
use std::sync::Arc;

const SITE_SCRIPT: &str = r#"
api = new Policy();
api.url = ["/api/motd"];
api.onRequest = function() {
    Request.respond('application/json',
        '{"motd": "generated on the edge, origin never contacted"}');
};
api.register();

stamp = new Policy();
stamp.onResponse = function() {
    Response.setHeader('X-Edge', 'nakika-vm');
};
stamp.register();
"#;

fn now_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_secs()
}

fn main() {
    // 1. An origin serving the stage scripts (two empty walls plus the site
    //    policy above) and a handful of cacheable pages.
    let origin = HttpServer::start(
        0,
        service_fn(|request: Request, _ctx| {
            let path = request.uri.path.as_str();
            if path.ends_with("nakika.js") {
                return Ok(Response::ok("application/javascript", SITE_SCRIPT)
                    .with_header("Cache-Control", "max-age=300"));
            }
            if path.ends_with("clientwall.js") || path.ends_with("serverwall.js") {
                return Ok(Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=300"));
            }
            Ok(
                Response::ok("text/html", format!("<html>origin page {path}</html>"))
                    .with_header("Cache-Control", "max-age=300"),
            )
        }),
    )
    .expect("origin starts");
    let base = origin.base_url();

    // 2. The scripted edge on the reactor transport.  The walls are fetched
    //    from the origin too, so the whole deployment is self-contained.
    let edge = Arc::new(
        NodeBuilder::scripted("scripted-edge")
            .wall_urls(
                &format!("{base}/clientwall.js"),
                &format!("{base}/serverwall.js"),
            )
            .origin(Arc::new(TcpOrigin::new()))
            .build(),
    );
    let proxy = ProxyServer::start_with(0, edge.service(), Transport::Reactor)
        .expect("reactor proxy starts");
    println!(
        "origin at {}, scripted reactor edge at {}\n",
        origin.addr(),
        proxy.addr()
    );

    let api_url = format!("{base}/api/motd");
    let page_url = format!("{base}/welcome.html");

    // 3. Cold: nothing is compiled yet, so the node refuses to run the
    //    pipeline on the event loop.
    let api_request = Request::get(&api_url);
    assert_eq!(
        edge.node().dispatch_hint(&api_request, now_secs()),
        DispatchHint::MayBlock
    );
    println!("cold dispatch hint for {api_url}: MayBlock (stages not compiled)");

    // 4. Drive traffic.  The first exchange compiles the walls and the site
    //    script; everything after reuses the compiled programs.
    let mut client = ProxyClient::connect(proxy.addr()).expect("client connects");
    let generated = client.get(&api_url).expect("generated exchange");
    assert_eq!(generated.status, StatusCode::OK);
    assert!(generated.body.to_text().contains("generated on the edge"));

    let proxied = client.get(&page_url).expect("proxied exchange");
    assert_eq!(proxied.status, StatusCode::OK);
    assert_eq!(proxied.headers.get("x-edge"), Some("nakika-vm"));

    for _ in 0..50 {
        client.get(&api_url).expect("warm generated exchange");
    }

    // 5. Warm: every stage is compiled and cached, the matched policy
    //    cannot fetch and always generates — the scripted exchange is now
    //    event-loop safe.
    assert_eq!(
        edge.node().dispatch_hint(&api_request, now_secs()),
        DispatchHint::Inline
    );
    println!("warm dispatch hint for {api_url}: Inline (runs on the event loop)");

    let stats = edge.node().cache_stats();
    println!(
        "\nscript_compiles = {} (walls share one source; the site script is the other)",
        stats.script_compiles
    );
    println!(
        "script_cache_hits = {} (every reuse of an already-compiled program)",
        stats.script_cache_hits
    );
    assert_eq!(
        stats.script_compiles, 2,
        "two distinct script sources: EMPTY_WALL and the site policy"
    );
    println!("\nscripted edge over TCP: OK");
}
