//! Reactor edge: the non-blocking transport and the sharded proxy cache,
//! over real localhost TCP.
//!
//! The deployment shape is the same as `medical_cdn`'s — an origin server
//! behind a Na Kika edge proxy — but the front-end runs on
//! [`Transport::Reactor`]: a few epoll-driven event-loop threads multiplex
//! every connection, so the 32 simultaneous keep-alive clients below cost
//! slab slots instead of parked threads, and the node's cache is split into
//! 8 independently locked shards so those clients do not serialize on one
//! mutex.
//!
//! ```text
//! cargo run --example reactor_edge
//! ```

use nakika_core::service::service_fn;
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{HttpServer, ProxyClient, ProxyServer, TcpOrigin, Transport};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 32;
const REQUESTS_PER_CLIENT: usize = 24;
const PAGES: usize = 12;

fn main() {
    // 1. A threaded origin server: a dozen cacheable pages.
    let origin = HttpServer::start(
        0,
        service_fn(|request: Request, _ctx| {
            Ok(Response::ok(
                "text/html",
                format!("<html>page {} </html>", request.uri.path),
            )
            .with_header("Cache-Control", "max-age=300"))
        }),
    )
    .expect("origin starts");

    // 2. The edge: a plain proxy node with an 8-way sharded cache, served by
    //    the reactor transport.  Swapping `Transport::Reactor` for
    //    `Transport::Threaded` is the entire difference between the two
    //    front-ends — the service stack is identical.
    let edge = Arc::new(
        NodeBuilder::plain_proxy("reactor-edge")
            .cache_shards(8)
            .origin(Arc::new(TcpOrigin::new()))
            .build(),
    );
    let proxy = ProxyServer::start_with(0, edge.service(), Transport::Reactor)
        .expect("reactor proxy starts");
    println!(
        "origin at {}, reactor proxy at {} ({:?} transport)\n",
        origin.addr(),
        proxy.addr(),
        proxy.transport()
    );

    // 3. 32 keep-alive clients hammer the proxy concurrently.
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = proxy.addr();
            let base = origin.base_url();
            std::thread::spawn(move || {
                let mut client = ProxyClient::connect(addr).expect("client connects");
                for r in 0..REQUESTS_PER_CLIENT {
                    let url = format!("{base}/page-{}.html", (c + r) % PAGES);
                    let response = client.get(&url).expect("exchange succeeds");
                    assert_eq!(response.status, StatusCode::OK);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = CLIENTS * REQUESTS_PER_CLIENT;

    // 4. The cache absorbed almost everything; the shards split the load.
    let stats = edge.node().cache_stats();
    println!(
        "{total} requests over {CLIENTS} keep-alive connections in {elapsed:.3} s \
         ({:.0} requests/sec)",
        total as f64 / elapsed
    );
    println!(
        "cache: {} hits, {} misses, hit ratio {:.1}%",
        stats.hits,
        stats.misses,
        stats.hit_ratio() * 100.0
    );
    for (i, shard) in edge.node().cache().shard_stats().iter().enumerate() {
        println!(
            "  shard {i}: {:>4} hits {:>3} misses {:>3} inserts",
            shard.hits, shard.misses, shard.inserts
        );
    }
    assert_eq!(stats.hits + stats.misses, total as u64);
    assert!(stats.hit_ratio() > 0.9, "warm workload is nearly all hits");
}
