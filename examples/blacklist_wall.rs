//! The §5.4 content-blocking extension plus the Figure-5 digital-library
//! policy: security policies expressed as ordinary scripts, enforced by the
//! client-side administrative control stage.
//!
//! ```text
//! cargo run --example blacklist_wall
//! ```

use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::{scripts, NodeBuilder};
use nakika_http::pattern::Cidr;
use nakika_http::{Request, Response, StatusCode};

fn main() {
    // The deployment's client wall: Figure 5 (digital libraries restricted to
    // the hosting organisation) plus a loader that schedules a stage generated
    // from a blacklist.
    let blocked = scripts::blacklist_stage(&["warez.example.net", "phish.example.com/login"]);
    let client_wall = format!(
        "{}\n{}",
        scripts::DIGITAL_LIBRARY_POLICY,
        scripts::BLACKLIST_LOADER
    );

    let origin =
        move |request: &Request| match (request.uri.host.as_str(), request.uri.path.as_str()) {
            ("nakika.net", "/clientwall.js") => {
                Response::ok("application/javascript", client_wall.as_str())
                    .with_header("Cache-Control", "max-age=300")
            }
            ("nakika.net", "/blocklist-generated.js") => {
                Response::ok("application/javascript", blocked.as_str())
                    .with_header("Cache-Control", "max-age=300")
            }
            ("nakika.net", "/serverwall.js") => {
                Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=300")
            }
            (_, path) if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            (_, path) => Response::ok("text/html", format!("content of {path}"))
                .with_header("Cache-Control", "max-age=60"),
        };

    let edge = NodeBuilder::scripted("policy-edge")
        .local_network(Cidr::parse("128.122.0.0/16").unwrap()) // NYU
        .origin_fn(origin)
        .build();

    let cases = [
        (
            "http://www.example.org/paper.html",
            "203.0.113.9",
            "ordinary content",
        ),
        (
            "http://warez.example.net/movie",
            "203.0.113.9",
            "blacklisted site",
        ),
        (
            "http://phish.example.com/login/steal",
            "203.0.113.9",
            "blacklisted path",
        ),
        (
            "http://bmj.bmjjournals.com/cgi/reprint/123",
            "203.0.113.9",
            "digital library, outside NYU",
        ),
        (
            "http://bmj.bmjjournals.com/cgi/reprint/123",
            "128.122.4.2",
            "digital library, inside NYU",
        ),
    ];
    for (i, (url, ip, label)) in cases.iter().enumerate() {
        let request = Request::get(url).with_client_ip(ip.parse().unwrap());
        let response = edge
            .call(request, &RequestCtx::at(10 + i as u64))
            .expect("policy decisions are responses, not platform errors");
        println!("{label:<38} {url:<46} -> {}", response.status);
    }

    // The shape the paper cares about: policy enforcement happens before any
    // origin access and is as extensible as application code.
    let outside = Request::get("http://warez.example.net/movie")
        .with_client_ip("203.0.113.9".parse().unwrap());
    assert_eq!(
        edge.call(outside, &RequestCtx::at(99)).unwrap().status,
        StatusCode::FORBIDDEN
    );
    let inside = Request::get("http://bmj.bmjjournals.com/cgi/reprint/123")
        .with_client_ip("128.122.4.2".parse().unwrap());
    assert_eq!(
        edge.call(inside, &RequestCtx::at(100)).unwrap().status,
        StatusCode::OK
    );
}
