//! Quickstart: run a single Na Kika edge node entirely in memory.
//!
//! A content producer publishes a `nakika.js` on its site; the edge node
//! fetches it, lets its policies process every exchange, and caches results.
//! The node is built with [`NodeBuilder`] and driven through the
//! [`HttpService`] boundary, exactly like the TCP servers and the simulator
//! drive it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};

fn main() {
    // 1. The origin server: one HTML page plus the site's Na Kika script,
    //    which stamps every response processed at the edge.
    let site_script = r#"
        p = new Policy();
        p.url = ["example.org"];
        p.onResponse = function() {
            Response.setHeader('X-Processed-By', 'nakika-edge');
            Response.setHeader('X-Congestion', System.congestion('cpu'));
        };
        p.register();
    "#
    .to_string();

    // 2. The edge node: a scripted node whose origin fetch path is a closure.
    let edge = NodeBuilder::scripted("quickstart-edge")
        .origin_fn(move |request: &Request| match request.uri.path.as_str() {
            "/nakika.js" => Response::ok("application/javascript", site_script.as_str())
                .with_header("Cache-Control", "max-age=300"),
            path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            path => Response::ok(
                "text/html",
                format!("<html><body>content of {path}</body></html>"),
            )
            .with_header("Cache-Control", "max-age=120"),
        })
        .build();

    // 3. Clients access the site through the edge (in a deployment they are
    //    redirected by appending `.nakika.net` to the hostname).
    for (t, path) in ["/welcome.html", "/welcome.html", "/other.html"]
        .iter()
        .enumerate()
    {
        let request = Request::get(&format!("http://example.org.nakika.net{path}"));
        let response = edge
            .call(request, &RequestCtx::at(100 + t as u64))
            .expect("in-memory exchange succeeds");
        println!(
            "GET {path:<14} -> {} ({} bytes), X-Processed-By: {}",
            response.status,
            response.body.len(),
            response.headers.get("X-Processed-By").unwrap_or("-")
        );
    }

    let stats = edge.node().stats();
    println!(
        "\nnode stats: {} requests, {} cache hits, {} origin fetches",
        stats.requests, stats.cache_hits, stats.origin_fetches
    );
    assert_eq!(stats.requests, 3);
    assert!(
        stats.cache_hits >= 1,
        "the repeated page is served from cache"
    );
}
