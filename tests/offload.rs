//! Event-loop stall regression: origin I/O for cache misses must not
//! freeze a reactor's other connections.
//!
//! Before the reactor origin offload, a cold fetch ran *on the event-loop
//! thread*: with one reactor, a single slow origin froze every warm
//! keep-alive client for the duration of the fetch, collapsing warm-hit
//! throughput to origin latency.  This test pins the server to one reactor
//! thread (the worst case, and deterministic), measures a pure warm
//! workload as the baseline, then repeats it while deliberately slow
//! (>=50 ms) cold fetches run continuously — and asserts the warm workload
//! stays within 2x of the baseline.  On the pre-offload reactor the mixed
//! run collapses to a multiple of the origin delay and fails by a wide
//! margin.

use nakika_core::service::{service_fn, NakikaError};
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{
    http_get_via_proxy, HttpServer, ProxyClient, ReactorConfig, ReactorServer, TcpOrigin,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the origin stalls each cold (`/slow/...`) fetch.
const ORIGIN_DELAY: Duration = Duration::from_millis(50);

/// Warm keep-alive clients hammering the hot URL.
const WARM_CLIENTS: usize = 64;

/// Requests per warm client per measured run.
const WARM_REQUESTS_PER_CLIENT: usize = 50;

/// Runs the warm workload — `WARM_CLIENTS` simultaneous keep-alive
/// connections, each issuing `WARM_REQUESTS_PER_CLIENT` gets of the hot
/// URL — and returns its wall-clock duration.
fn warm_run(proxy: std::net::SocketAddr, url: &str) -> Duration {
    let start = Instant::now();
    let clients: Vec<_> = (0..WARM_CLIENTS)
        .map(|_| {
            let url = url.to_string();
            std::thread::spawn(move || -> Result<(), NakikaError> {
                let mut client = ProxyClient::connect(proxy)?;
                for _ in 0..WARM_REQUESTS_PER_CLIENT {
                    let response = client.get(&url)?;
                    assert_eq!(response.status, StatusCode::OK);
                    assert_eq!(response.body.to_text(), "hot content");
                }
                Ok(())
            })
        })
        .collect();
    for client in clients {
        client.join().expect("warm client panicked").unwrap();
    }
    start.elapsed()
}

#[test]
fn slow_cold_origin_does_not_stall_warm_reactor_clients() {
    // The origin sleeps ORIGIN_DELAY for every /slow/ path and answers the
    // hot path instantly; everything is cacheable, but each cold URL is
    // requested exactly once so it always misses.
    let origin = HttpServer::start(
        0,
        service_fn(|req: Request, _ctx| {
            if req.uri.path.starts_with("/slow/") {
                std::thread::sleep(ORIGIN_DELAY);
            }
            let body = if req.uri.path == "/hot.html" {
                "hot content"
            } else {
                "cold content"
            };
            Ok(Response::ok("text/html", body).with_header("Cache-Control", "max-age=600"))
        }),
    )
    .unwrap();

    let edge = NodeBuilder::plain_proxy("offload-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    // One reactor thread: pre-offload, a single in-flight cold fetch
    // freezes *every* connection, so the regression cannot hide behind
    // multi-reactor luck.
    let server = ReactorServer::start_with_config(
        0,
        edge.service(),
        ReactorConfig {
            reactors: 1,
            workers: 4,
            ..ReactorConfig::default()
        },
    )
    .unwrap();

    let hot_url = format!("{}/hot.html", origin.base_url());
    // Warm the cache so the measured runs are pure warm hits.
    let first = http_get_via_proxy(server.addr(), &hot_url).unwrap();
    assert_eq!(first.status, StatusCode::OK);

    // Baseline: the warm workload with no cold traffic.
    let baseline = warm_run(server.addr(), &hot_url);

    // Mixed: the same workload while two clients keep slow cold misses in
    // flight for the whole measurement window.
    let stop = Arc::new(AtomicBool::new(false));
    let cold_fetches = Arc::new(AtomicUsize::new(0));
    let cold_clients: Vec<_> = (0..2)
        .map(|c| {
            let stop = stop.clone();
            let fetched = cold_fetches.clone();
            let base = origin.base_url();
            let proxy = server.addr();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let url = format!("{base}/slow/{c}-{i}.html");
                    let response = http_get_via_proxy(proxy, &url).expect("cold fetch failed");
                    assert_eq!(response.body.to_text(), "cold content");
                    fetched.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    let mixed = warm_run(server.addr(), &hot_url);
    stop.store(true, Ordering::Relaxed);
    for client in cold_clients {
        client.join().expect("cold client panicked");
    }

    assert!(
        cold_fetches.load(Ordering::Relaxed) > 0,
        "cold misses really overlapped the warm workload"
    );
    assert_eq!(
        edge.node().stats().origin_fetches as usize,
        cold_fetches.load(Ordering::Relaxed) + 1,
        "every cold URL missed the cache (plus the one hot warm-up fetch)"
    );
    // The acceptance bound: warm throughput within 2x of the no-miss
    // baseline.  A small absolute grace absorbs scheduler noise on tiny
    // baselines without masking the failure mode (pre-offload, the mixed
    // run serializes behind ~50 ms origin stalls and lands far beyond it).
    let bound = (baseline * 2).max(baseline + Duration::from_millis(120));
    assert!(
        mixed <= bound,
        "warm clients stalled behind cold origin I/O: baseline {baseline:?}, \
         with concurrent cold misses {mixed:?} (bound {bound:?})"
    );
}
