//! Hostile-workload survival: the proxy under attack must evict the
//! attackers, answer the protocol-violation traffic with the right
//! status codes, and keep serving polite clients byte-identically —
//! on both transports.
//!
//! The attack clients live in `nakika_bench::hostile`; the defenses
//! under test are the per-connection progress deadlines and connection
//! cap in `nakika-server` (`ServerOptions`), the header/body caps in
//! `nakika-http`'s parser, and the token-bucket `RateLimitLayer` in
//! `nakika-core`.

use nakika_bench::hostile::{header_flood, keepalive_soak, oversized_body, slow_loris, SlowReader};
use nakika_core::service::service_fn;
use nakika_core::{NodeBuilder, RateLimitLayer};
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{
    http_get_via_proxy, HttpServer, ProxyClient, ProxyServer, ServerOptions, TcpOrigin, Transport,
    OUTPUT_WINDOW_BYTES,
};
use std::sync::Arc;
use std::time::Duration;

fn expected_body(i: usize) -> String {
    format!("polite body {i}: {}", "y".repeat(256 + i))
}

fn start_origin() -> HttpServer {
    HttpServer::start(
        0,
        service_fn(|req: Request, _ctx| {
            let path = req.uri.path.as_str();
            if path.starts_with("/big") {
                // Large enough that the kernel's loopback socket buffers
                // cannot absorb it all: a non-draining reader really does
                // stall the server's writes.
                return Ok(
                    Response::ok("application/octet-stream", "z".repeat(8 << 20))
                        .with_header("Cache-Control", "max-age=600"),
                );
            }
            let i: usize = path
                .trim_start_matches("/polite/")
                .trim_end_matches(".html")
                .parse()
                .unwrap_or(0);
            Ok(Response::ok("text/html", expected_body(i))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin starts")
}

fn start_proxy(transport: Transport, options: ServerOptions) -> (HttpServer, ProxyServer) {
    let origin = start_origin();
    let edge = NodeBuilder::plain_proxy("hostile-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy =
        ProxyServer::start_with_options(0, edge.service(), transport, options).expect("proxy");
    (origin, proxy)
}

/// A slow-loris drips header bytes while 64 polite keep-alive clients
/// hammer cached pages.  The loris must be evicted by the progress
/// deadline (raw bytes are not progress); every polite request must
/// succeed byte-identically, because each completed request re-arms
/// that client's deadline.
#[test]
fn slow_loris_is_evicted_while_polite_clients_stay_healthy() {
    for transport in [Transport::Threaded, Transport::Reactor] {
        let (origin, proxy) = start_proxy(
            transport,
            ServerOptions {
                idle_timeout_ms: 600,
                ..ServerOptions::default()
            },
        );
        let addr = proxy.addr();
        let base = origin.base_url();

        let loris = std::thread::spawn(move || {
            // 50 ms per byte: constant byte-level activity, zero protocol
            // progress.  A byte-activity timer would never fire here.
            slow_loris(addr, Duration::from_millis(50), Duration::from_secs(20))
        });

        let polite: Vec<_> = (0..64)
            .map(|c| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let mut client = ProxyClient::connect(addr).expect("polite connect");
                    for r in 0..8 {
                        let i = (c + r) % 16;
                        let url = format!("{base}/polite/{i}.html");
                        let response = client.get(&url).expect("polite request survives attack");
                        assert_eq!(response.status, StatusCode::OK);
                        assert_eq!(
                            response.body.to_text(),
                            expected_body(i),
                            "byte-identical under attack on {transport:?}"
                        );
                    }
                })
            })
            .collect();
        for p in polite {
            p.join().expect("polite client panicked");
        }

        let outcome = loris.join().expect("loris panicked");
        assert!(
            outcome.evicted,
            "slow-loris survived its 20 s give-up on {transport:?}"
        );
        assert!(
            proxy.stats().timeouts() >= 1,
            "eviction not counted on {transport:?}"
        );
    }
}

/// Protocol-violation traffic is refused with the right status before it
/// costs memory: unbounded header lists get 431, a declared body past
/// the parser cap gets 413 — from the `Content-Length` alone.
#[test]
fn floods_are_refused_with_431_and_413() {
    for transport in [Transport::Threaded, Transport::Reactor] {
        let (_origin, proxy) = start_proxy(transport, ServerOptions::default());

        let flood = header_flood(proxy.addr(), 512);
        assert_eq!(
            flood.status,
            Some(431),
            "512-header request must get 431 on {transport:?}"
        );

        let body = oversized_body(proxy.addr(), 128 * 1024 * 1024);
        assert_eq!(
            body.status,
            Some(413),
            "128 MiB declared body must get 413 on {transport:?}"
        );
    }
}

/// A slow-read client asks for an 8 MiB cached body and drains one byte
/// at a time: its output never empties, so the progress deadline evicts
/// it — and the per-connection output window keeps the server's own
/// buffered bytes bounded the whole while.  Eviction is judged by the
/// server's `timeouts` counter, not by client-side EOF: the kernel's
/// loopback buffers hand the client stale bytes long after the server
/// has hung up, so the client is the one witness that cannot be trusted.
#[test]
fn slow_reader_is_evicted_and_output_stays_bounded() {
    for transport in [Transport::Threaded, Transport::Reactor] {
        let (origin, proxy) = start_proxy(
            transport,
            ServerOptions {
                idle_timeout_ms: 500,
                ..ServerOptions::default()
            },
        );
        let url = format!("{}/big.bin", origin.base_url());
        // Warm the cache politely first.
        let response = http_get_via_proxy(proxy.addr(), &url).expect("warm fetch");
        assert_eq!(response.body.len(), 8 << 20);

        let reader = SlowReader::start(proxy.addr(), &url).expect("slow reader connects");
        let drain = std::thread::spawn(move || {
            reader.drain(Duration::from_millis(5), Duration::from_secs(8));
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        while proxy.stats().timeouts() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "slow reader never evicted on {transport:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(
            proxy.peak_buffered_output() <= OUTPUT_WINDOW_BYTES,
            "stalled reader ballooned the output buffer to {} on {transport:?}",
            proxy.peak_buffered_output()
        );
        drain.join().expect("drain thread panicked");
    }
}

/// The token-bucket rate limit is enforced at the service seam: a client
/// that exceeds its budget sees 429 (`NakikaError::RateLimited`), and the
/// layer counts the rejection.
#[test]
fn rate_limited_client_sees_429() {
    let origin = start_origin();
    let limiter = RateLimitLayer::new(1, 2);
    let edge = NodeBuilder::plain_proxy("ratelimit-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .layer(limiter.clone())
        .build();
    let proxy = ProxyServer::start(0, edge.service()).expect("proxy");
    let url = format!("{}/polite/1.html", origin.base_url());

    let mut ok = 0;
    let mut limited = 0;
    for _ in 0..6 {
        let response = http_get_via_proxy(proxy.addr(), &url).expect("exchange completes");
        match response.status.as_u16() {
            200 => ok += 1,
            429 => limited += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "burst must admit something");
    assert!(
        limited >= 1,
        "six instant requests against burst=2 must trip"
    );
    assert_eq!(limiter.rejections(), limited as u64);
}

/// Past the connection cap, new arrivals get a canned 503 and a close —
/// and the refusal is counted.  Existing connections are untouched.
#[test]
fn over_cap_connections_get_503() {
    for transport in [Transport::Threaded, Transport::Reactor] {
        let (origin, proxy) = start_proxy(
            transport,
            ServerOptions {
                max_connections: 4,
                ..ServerOptions::default()
            },
        );
        let url = format!("{}/polite/2.html", origin.base_url());

        // Fill the cap with live keep-alive sessions (a request each, so
        // the slots are provably claimed before the fifth arrives).
        let mut held: Vec<ProxyClient> = (0..4)
            .map(|_| {
                let mut c = ProxyClient::connect(proxy.addr()).expect("connect");
                assert_eq!(c.get(&url).expect("in-cap request").status, StatusCode::OK);
                c
            })
            .collect();

        let refused = http_get_via_proxy(proxy.addr(), &url).expect("over-cap exchange");
        assert_eq!(
            refused.status.as_u16(),
            503,
            "fifth connection must be refused on {transport:?}"
        );
        assert!(proxy.stats().rejected_over_cap() >= 1);

        // The held connections still work after the refusal.
        for c in held.iter_mut() {
            assert_eq!(c.get(&url).expect("still served").status, StatusCode::OK);
        }
    }
}

/// A scaled-down always-on soak: hundreds of polite keep-alive sessions
/// held open simultaneously, several rounds each, zero drops.  CI runs
/// the large version (`NAKIKA_SOAK_CONNS=1000`, and the experiments
/// harness's full mode goes to 10k); the default here stays modest so
/// `cargo test` is quick on small fd budgets.
#[test]
fn keepalive_soak_drops_no_polite_connections() {
    let requested = std::env::var("NAKIKA_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for transport in [Transport::Threaded, Transport::Reactor] {
        // The threaded transport parks one OS thread per connection;
        // cap its side of the soak so the test exercises "many parked
        // threads" without asking the box for thousands of them.
        let conns = match transport {
            Transport::Threaded => requested.min(128),
            Transport::Reactor => nakika_bench::hostile::fd_budget_connections(requested),
        };
        let (origin, proxy) = start_proxy(transport, ServerOptions::default());
        let url = format!("{}/polite/3.html", origin.base_url());
        http_get_via_proxy(proxy.addr(), &url).expect("warm");

        let report = keepalive_soak(proxy.addr(), &url, conns, 3).expect("soak runs");
        assert_eq!(
            report.dropped, 0,
            "dropped {} of {} polite connections on {transport:?}",
            report.dropped, report.connections
        );
        assert_eq!(report.completed, (conns * 3) as u64);
        assert!(report.hist.count() == report.completed);
    }
}
