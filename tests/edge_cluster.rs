//! The multi-process cluster soak: three real `edge-node` OS processes on
//! localhost, joined through the stdio handshake in
//! `nakika_bench::cluster`, serving one origin that the parent controls
//! and counts.
//!
//! This is the acceptance test for the cooperative network over real TCP:
//! a key cached on only one node is served byte-identically from every
//! node, the origin is fetched exactly once for it, and the cluster-wide
//! counters add up — every request a node saw is accounted for as a local
//! hit, a peer answer, or an origin fetch.

use nakika_bench::cluster::spawn_cluster;
use nakika_core::service::service_fn;
use nakika_http::{Request, Response};
use nakika_server::{http_get_via_proxy, HttpServer};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn proxy_addr(base_url: &str) -> SocketAddr {
    base_url
        .strip_prefix("http://")
        .expect("http base url")
        .parse()
        .expect("socket address")
}

#[test]
fn three_process_cluster_serves_identical_bytes_from_every_node() {
    let origin_hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&origin_hits);
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(Response::ok(
                "text/html",
                format!("<html>cluster copy of {}</html>", req.uri.path),
            )
            .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin failed to start");

    // A high replication threshold keeps the request accounting below
    // deterministic; the replication path itself is covered in
    // tests/peer_fetch.rs.
    let nodes = spawn_cluster(
        Path::new(env!("CARGO_BIN_EXE_edge-node")),
        &[],
        &["alpha", "beta", "gamma"],
        &["--replicate", "1", "--threshold", "1000"],
    )
    .expect("cluster failed to start");

    // Cache the key on exactly one node.
    let url = format!("{}/shared/page.html", origin.base_url());
    let first = http_get_via_proxy(proxy_addr(&nodes[0].base_url), &url)
        .expect("first fetch")
        .body
        .to_bytes();
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);

    // Every node serves the same bytes without another origin fetch: the
    // other two answer their local miss from a peer, over real TCP.
    for node in &nodes {
        let body = http_get_via_proxy(proxy_addr(&node.base_url), &url)
            .expect("fetch via node")
            .body
            .to_bytes();
        assert_eq!(body, first, "node {} served different bytes", node.name);
    }
    assert_eq!(
        origin_hits.load(Ordering::SeqCst),
        1,
        "the cluster must fetch a shared key from the origin exactly once"
    );

    // Soak: a rotating set of keys through rotating entry points.
    for i in 0..12 {
        let soak_url = format!("{}/soak/{}.html", origin.base_url(), i % 4);
        let node = &nodes[i % nodes.len()];
        http_get_via_proxy(proxy_addr(&node.base_url), &soak_url).expect("soak fetch");
    }

    // Cluster-wide consistency: pull every node's counters and check that
    // they agree with each other and with the origin's own count.
    let stats: Vec<HashMap<String, u64>> = nodes
        .iter()
        .map(|node| node.stats().expect("node stats"))
        .collect();
    let total = |key: &str| stats.iter().map(|s| s[key]).sum::<u64>();

    // 16 client requests were issued above; every additional request a
    // node saw was a peer forward, and each of those is counted at the
    // forwarding node as exactly one peer hit or peer miss.
    assert_eq!(
        total("requests"),
        16 + total("peer_hits") + total("peer_misses"),
        "per-node stats: {stats:?}"
    );
    // Every request resolved as a local hit, a peer answer, or an origin
    // fetch — nothing double-counted, nothing dropped.
    assert_eq!(
        total("requests"),
        total("cache_hits") + total("peer_hits") + total("origin_fetches"),
        "per-node stats: {stats:?}"
    );
    // The nodes' origin accounting matches the origin's own counter.
    assert_eq!(total("origin_fetches"), origin_hits.load(Ordering::SeqCst));
    assert!(
        total("peer_hits") >= 2,
        "the shared key must have been peer-answered at least twice: {stats:?}"
    );
}
