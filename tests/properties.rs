//! Property-based tests over the core data structures and invariants:
//! HTTP message round-trips, URI rewriting, policy-matcher agreement, cache
//! accounting, overlay lookups, the script engine's sandbox, and SHA-256.

use nakika_core::policy::{LinearMatcher, Matcher, Policy, PolicySet};
use nakika_core::ProxyCache;
use nakika_http::{parse_request, parse_response, serialize_request, serialize_response};
use nakika_http::{Method, ParseOutcome, Request, Response, Uri};
use nakika_overlay::{key_for, Location, Overlay};
use nakika_script::{Context, Interpreter, Value};
use proptest::prelude::*;
use std::time::Duration;

fn header_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ;=/_.-]{0,40}"
}

fn path_segment() -> impl Strategy<Value = String> {
    "[a-z0-9_-]{1,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_serialization_round_trips(
        segs in prop::collection::vec(path_segment(), 1..4),
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        body in prop::collection::vec(any::<u8>(), 0..256),
        header in header_value(),
    ) {
        let uri = format!("http://{host}/{}", segs.join("/"));
        let request = Request::get(&uri)
            .with_header("X-Test", header.trim())
            .with_body(body.clone());
        let wire = serialize_request(&request);
        match parse_request(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.uri.path, request.uri.path);
                prop_assert_eq!(message.body.to_bytes().to_vec(), body);
            }
            ParseOutcome::Partial => prop_assert!(false, "round trip incomplete"),
        }
    }

    #[test]
    fn response_serialization_round_trips(
        status in 200u16..599,
        body in prop::collection::vec(any::<u8>(), 0..512),
        ctype in "[a-z]{2,8}/[a-z]{2,8}",
    ) {
        let mut response = Response::ok(&ctype, body.clone());
        response.status = nakika_http::StatusCode::new(status).unwrap();
        let wire = serialize_response(&response);
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.status.as_u16(), status);
                prop_assert_eq!(message.body.to_bytes().to_vec(), body);
            }
            ParseOutcome::Partial => prop_assert!(false, "round trip incomplete"),
        }
    }

    #[test]
    fn nakika_url_rewriting_is_reversible(
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        segs in prop::collection::vec(path_segment(), 0..4),
    ) {
        let uri = Uri::parse(&format!("http://{host}/{}", segs.join("/"))).unwrap();
        let rewritten = uri.to_nakika();
        prop_assert!(rewritten.is_nakika());
        prop_assert_eq!(rewritten.to_origin(), uri.clone());
        // Rewriting is idempotent.
        prop_assert_eq!(rewritten.to_nakika(), rewritten);
    }

    #[test]
    fn decision_tree_and_linear_matcher_always_agree(
        hosts in prop::collection::vec("[a-z]{1,8}\\.(com|org|edu)", 1..20),
        query_host in "[a-z]{1,8}\\.(com|org|edu)",
    ) {
        let mut set = PolicySet::new();
        for (i, host) in hosts.iter().enumerate() {
            let mut policy = Policy::catch_all();
            policy.url = vec![host.clone()];
            policy.on_request = Some(Value::Number(i as f64));
            set.push(policy);
        }
        let tree = set.compile();
        let linear = LinearMatcher::build(&set);
        let request = Request::get(&format!("http://{query_host}/page"));
        let a = tree.find_closest_match(&request).map(|p| p.on_request.clone());
        let b = linear.find_closest_match(&request).map(|p| p.on_request.clone());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cache_usage_never_exceeds_capacity(
        inserts in prop::collection::vec((path_segment(), 1usize..4000), 1..30),
    ) {
        let capacity = 16 * 1024;
        let cache = ProxyCache::new(capacity, Duration::from_secs(60));
        for (i, (name, size)) in inserts.iter().enumerate() {
            let response = Response::ok("text/plain", vec![b'x'; *size])
                .with_header("Cache-Control", "max-age=600");
            cache.put(&format!("http://a.com/{name}{i}"), &Method::Get, &response, i as u64);
            prop_assert!(cache.used_bytes() <= capacity,
                "used {} exceeds capacity {capacity}", cache.used_bytes());
        }
    }

    #[test]
    fn overlay_lookup_finds_fresh_announcements(
        urls in prop::collection::vec("[a-z]{1,10}", 1..10),
        ttl in 10u64..1000,
    ) {
        let overlay = Overlay::with_defaults();
        let writer = key_for("writer");
        let reader = key_for("reader");
        overlay.join(writer, Location::new(0.0, 0.0));
        overlay.join(reader, Location::new(1.0, 0.0));
        for url in &urls {
            let key = format!("http://site.example/{url}");
            overlay.put(writer, &key, "writer", ttl);
            let values = overlay.get(reader, &key, ttl - 1);
            prop_assert!(values.iter().any(|v| v.payload == "writer"));
            prop_assert!(overlay.get(reader, &key, ttl + 1).is_empty());
        }
    }

    #[test]
    fn arithmetic_in_the_script_engine_matches_rust(
        a in -1_000_000i64..1_000_000,
        b in -1_000i64..1_000,
    ) {
        let src = format!("{a} + {b} * 2 - ({a} - {b})");
        let expected = (a + b * 2 - (a - b)) as f64;
        prop_assert_eq!(nakika_script::eval(&src).unwrap(), Value::Number(expected));
    }

    #[test]
    fn script_sandbox_always_terminates_within_its_fuel_budget(
        iterations in 1u64..10_000,
    ) {
        // Whatever the loop bound, the interpreter either finishes or stops at
        // the fuel limit — it never runs away.
        let ctx = Context::with_limits(20_000, 1 << 20);
        nakika_script::stdlib::install(&ctx);
        let program = nakika_script::parse_program(
            &format!("var s = 0; for (var i = 0; i < {iterations}; i++) {{ s = s + i; }} s"),
        ).unwrap();
        let mut interp = Interpreter::new(&ctx);
        let result = interp.run(&program);
        prop_assert!(interp.fuel_used() <= 20_000 + 16);
        match result {
            Ok(Value::Number(_)) => {}
            Err(nakika_script::ScriptError::FuelExhausted) => {}
            other => prop_assert!(false, "unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = nakika_integrity::sha256_hex(&data);
        let b = nakika_integrity::sha256_hex(&data);
        prop_assert_eq!(&a, &b);
        let mut flipped = data.clone();
        if let Some(first) = flipped.first_mut() {
            *first ^= 0x01;
            prop_assert_ne!(a, nakika_integrity::sha256_hex(&flipped));
        }
    }
}
