//! Property-based tests over the core data structures and invariants:
//! HTTP message round-trips, URI rewriting, policy-matcher agreement, cache
//! accounting, overlay lookups, the script engine's sandbox, and SHA-256.

use nakika_bench::hist::LatencyRecorder;
use nakika_core::policy::{LinearMatcher, Matcher, Policy, PolicySet};
use nakika_core::ProxyCache;
use nakika_http::{parse_request, parse_response, serialize_request, serialize_response};
use nakika_http::{Method, ParseOutcome, Request, Response, Uri};
use nakika_overlay::{key_for, Location, Overlay};
use nakika_script::{Context, Interpreter, Value};
use proptest::prelude::*;
use std::time::Duration;

fn header_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ;=/_.-]{0,40}"
}

fn path_segment() -> impl Strategy<Value = String> {
    "[a-z0-9_-]{1,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_serialization_round_trips(
        segs in prop::collection::vec(path_segment(), 1..4),
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        body in prop::collection::vec(any::<u8>(), 0..256),
        header in header_value(),
    ) {
        let uri = format!("http://{host}/{}", segs.join("/"));
        let request = Request::get(&uri)
            .with_header("X-Test", header.trim())
            .with_body(body.clone());
        let wire = serialize_request(&request);
        match parse_request(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.uri.path, request.uri.path);
                prop_assert_eq!(message.body.to_bytes().to_vec(), body);
            }
            ParseOutcome::Partial => prop_assert!(false, "round trip incomplete"),
        }
    }

    #[test]
    fn response_serialization_round_trips(
        status in 200u16..599,
        body in prop::collection::vec(any::<u8>(), 0..512),
        ctype in "[a-z]{2,8}/[a-z]{2,8}",
    ) {
        let mut response = Response::ok(&ctype, body.clone());
        response.status = nakika_http::StatusCode::new(status).unwrap();
        let wire = serialize_response(&response);
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.status.as_u16(), status);
                prop_assert_eq!(message.body.to_bytes().to_vec(), body);
            }
            ParseOutcome::Partial => prop_assert!(false, "round trip incomplete"),
        }
    }

    #[test]
    fn incremental_parse_agrees_with_one_shot_at_every_split(
        body in prop::collection::vec(any::<u8>(), 0..300),
        split_seed in any::<u64>(),
        chunked in any::<bool>(),
    ) {
        // Build a response wire image with either framing, then feed it to
        // the incremental parser split at a random boundary; the outcome
        // must be Partial before the message completes and identical to the
        // one-shot parse afterwards.
        let wire = if chunked {
            let mut resp = nakika_http::Response::new(nakika_http::StatusCode::OK);
            resp.body = nakika_http::Body::stream_from_iter(
                body.chunks(37).map(bytes::Bytes::copy_from_slice).collect::<Vec<_>>(),
                None,
            );
            let mut writer = nakika_http::ResponseWriter::new(resp);
            let mut wire = Vec::new();
            while let Some(part) = writer.next_part().unwrap() {
                wire.extend_from_slice(&part);
            }
            wire
        } else {
            serialize_response(&Response::ok("application/octet-stream", body.clone()))
        };
        let reference = match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                message
            }
            ParseOutcome::Partial => { prop_assert!(false, "one-shot incomplete"); unreachable!() }
        };
        prop_assert_eq!(reference.body.to_bytes().to_vec(), body.clone());
        let split = (split_seed as usize) % wire.len().max(1);
        match parse_response(&wire[..split]).unwrap() {
            ParseOutcome::Partial => {}
            ParseOutcome::Complete { consumed, .. } => {
                // Only an empty-body message can complete early (header-only
                // prefix of a chunked message cannot).
                prop_assert_eq!(consumed, split);
            }
        }
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                prop_assert_eq!(message.body.to_bytes(), reference.body.to_bytes());
                prop_assert_eq!(message.status, reference.status);
            }
            ParseOutcome::Partial => prop_assert!(false, "full buffer must complete"),
        }
    }

    #[test]
    fn chunked_decoder_is_split_invariant(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 0..8),
        split_seed in any::<u64>(),
        with_trailer in any::<bool>(),
    ) {
        // Encode a chunked body by hand...
        let mut wire = Vec::new();
        for chunk in &chunks {
            wire.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            wire.extend_from_slice(chunk);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n");
        if with_trailer {
            wire.extend_from_slice(b"X-Checksum: abc\r\n");
        }
        wire.extend_from_slice(b"\r\n");
        let expected: Vec<u8> = chunks.concat();

        // ...and decode it byte-split at a random point: the incremental
        // decoder must produce exactly the same data as a whole-buffer feed,
        // consuming exactly the wire length.
        let split = (split_seed as usize) % (wire.len() + 1);
        let mut decoder = nakika_http::ChunkedDecoder::new();
        let mut out = Vec::new();
        let consumed_a = decoder.feed(&wire[..split], &mut out).unwrap();
        prop_assert_eq!(consumed_a, split);
        let consumed_b = decoder.feed(&wire[split..], &mut out).unwrap();
        prop_assert!(decoder.is_done());
        prop_assert_eq!(consumed_a + consumed_b, wire.len());
        let data: Vec<u8> = out.iter().flat_map(|c| c.to_vec()).collect();
        prop_assert_eq!(data, expected);

        // Degenerate resplit: one byte at a time must agree too.
        let mut decoder = nakika_http::ChunkedDecoder::new();
        let mut out = Vec::new();
        for byte in &wire {
            decoder.feed(std::slice::from_ref(byte), &mut out).unwrap();
        }
        prop_assert!(decoder.is_done());
        let data: Vec<u8> = out.iter().flat_map(|c| c.to_vec()).collect();
        prop_assert_eq!(data, chunks.concat());
    }

    #[test]
    fn nakika_url_rewriting_is_reversible(
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        segs in prop::collection::vec(path_segment(), 0..4),
    ) {
        let uri = Uri::parse(&format!("http://{host}/{}", segs.join("/"))).unwrap();
        let rewritten = uri.to_nakika();
        prop_assert!(rewritten.is_nakika());
        prop_assert_eq!(rewritten.to_origin(), uri.clone());
        // Rewriting is idempotent.
        prop_assert_eq!(rewritten.to_nakika(), rewritten);
    }

    #[test]
    fn decision_tree_and_linear_matcher_always_agree(
        hosts in prop::collection::vec("[a-z]{1,8}\\.(com|org|edu)", 1..20),
        query_host in "[a-z]{1,8}\\.(com|org|edu)",
    ) {
        let mut set = PolicySet::new();
        for (i, host) in hosts.iter().enumerate() {
            let mut policy = Policy::catch_all();
            policy.url = vec![host.clone()];
            policy.on_request = Some(Value::Number(i as f64));
            set.push(policy);
        }
        let tree = set.compile();
        let linear = LinearMatcher::build(&set);
        let request = Request::get(&format!("http://{query_host}/page"));
        let a = tree.find_closest_match(&request).map(|p| p.on_request.clone());
        let b = linear.find_closest_match(&request).map(|p| p.on_request.clone());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cache_usage_never_exceeds_capacity(
        inserts in prop::collection::vec((path_segment(), 1usize..4000), 1..30),
    ) {
        let capacity = 16 * 1024;
        let cache = ProxyCache::new(capacity, Duration::from_secs(60));
        for (i, (name, size)) in inserts.iter().enumerate() {
            let response = Response::ok("text/plain", vec![b'x'; *size])
                .with_header("Cache-Control", "max-age=600");
            cache.put(&format!("http://a.com/{name}{i}"), &Method::Get, &response, i as u64);
            prop_assert!(cache.used_bytes() <= capacity,
                "used {} exceeds capacity {capacity}", cache.used_bytes());
        }
    }

    #[test]
    fn overlay_lookup_finds_fresh_announcements(
        urls in prop::collection::vec("[a-z]{1,10}", 1..10),
        ttl in 10u64..1000,
    ) {
        let overlay = Overlay::with_defaults();
        let writer = key_for("writer");
        let reader = key_for("reader");
        overlay.join(writer, Location::new(0.0, 0.0));
        overlay.join(reader, Location::new(1.0, 0.0));
        for url in &urls {
            let key = format!("http://site.example/{url}");
            overlay.put(writer, &key, "writer", ttl);
            let values = overlay.get(reader, &key, ttl - 1);
            prop_assert!(values.iter().any(|v| v.payload == "writer"));
            prop_assert!(overlay.get(reader, &key, ttl + 1).is_empty());
        }
    }

    #[test]
    fn arithmetic_in_the_script_engine_matches_rust(
        a in -1_000_000i64..1_000_000,
        b in -1_000i64..1_000,
    ) {
        let src = format!("{a} + {b} * 2 - ({a} - {b})");
        let expected = (a + b * 2 - (a - b)) as f64;
        prop_assert_eq!(nakika_script::eval(&src).unwrap(), Value::Number(expected));
    }

    #[test]
    fn script_sandbox_always_terminates_within_its_fuel_budget(
        iterations in 1u64..10_000,
    ) {
        // Whatever the loop bound, the interpreter either finishes or stops at
        // the fuel limit — it never runs away.
        let ctx = Context::with_limits(20_000, 1 << 20);
        nakika_script::stdlib::install(&ctx);
        let program = nakika_script::parse_program(
            &format!("var s = 0; for (var i = 0; i < {iterations}; i++) {{ s = s + i; }} s"),
        ).unwrap();
        let mut interp = Interpreter::new(&ctx);
        let result = interp.run(&program);
        prop_assert!(interp.fuel_used() <= 20_000 + 16);
        match result {
            Ok(Value::Number(_)) => {}
            Err(nakika_script::ScriptError::FuelExhausted) => {}
            other => prop_assert!(false, "unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = nakika_integrity::sha256_hex(&data);
        let b = nakika_integrity::sha256_hex(&data);
        prop_assert_eq!(&a, &b);
        let mut flipped = data.clone();
        if let Some(first) = flipped.first_mut() {
            *first ^= 0x01;
            prop_assert_ne!(a, nakika_integrity::sha256_hex(&flipped));
        }
    }

    /// The bench histogram against a sorted-vec oracle: every reported
    /// percentile brackets the oracle's exact answer from above, within
    /// the log-bucketing's guaranteed relative error, and percentiles
    /// are monotone in the quantile.
    #[test]
    fn latency_histogram_percentiles_track_the_sorted_oracle(
        samples in prop::collection::vec(0u64..100_000_000, 1..200),
    ) {
        let hist = LatencyRecorder::new();
        for &s in &samples {
            hist.record_micros(s);
        }
        let mut oracle = samples.clone();
        oracle.sort_unstable();
        prop_assert_eq!(hist.count(), samples.len() as u64);

        let mut last = 0u64;
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let got = hist.percentile_us(q);
            prop_assert!(got >= last, "percentile not monotone: p{q} = {got} < {last}");
            last = got;
            let rank = ((q * oracle.len() as f64).ceil() as usize).clamp(1, oracle.len());
            let exact = oracle[rank - 1];
            // The histogram reports the upper edge of the exact value's
            // bucket: never below the oracle, never more than one
            // sub-bucket's width (1/16th, plus a unit) above it.
            prop_assert!(got >= exact, "p{q}: {got} below oracle {exact}");
            prop_assert!(
                got <= exact + exact / 16 + 1,
                "p{q}: {got} too far above oracle {exact}"
            );
        }
    }

    /// Merging recorders is associative and agrees bucket-for-bucket with
    /// recording every sample into a single histogram, so per-thread
    /// recorders folded in any order report identical percentiles.
    #[test]
    fn latency_histogram_merge_is_associative(
        a in prop::collection::vec(0u64..10_000_000, 0..64),
        b in prop::collection::vec(0u64..10_000_000, 0..64),
        c in prop::collection::vec(0u64..10_000_000, 0..64),
    ) {
        let rec = |samples: &[u64]| {
            let h = LatencyRecorder::new();
            for &s in samples {
                h.record_micros(s);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = rec(&a);
        left.merge(&rec(&b));
        left.merge(&rec(&c));
        // a ⊕ (b ⊕ c)
        let bc = rec(&b);
        bc.merge(&rec(&c));
        let right = rec(&a);
        right.merge(&bc);
        // Everything into one recorder.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let single = rec(&all);

        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.bucket_counts(), single.bucket_counts());
        prop_assert_eq!(left.count(), all.len() as u64);
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(left.percentile_us(q), single.percentile_us(q));
        }
    }
}
