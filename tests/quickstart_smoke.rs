//! Smoke test covering the quickstart example's path end-to-end over real
//! localhost TCP: an [`HttpServer`] origin publishes a site `nakika.js`, a
//! scripted [`NaKikaNode`] sits behind a [`ProxyServer`], and a client fetches
//! through the proxy — so `cargo test` exercises the same wiring as
//! `cargo run --example quickstart` plus the real-socket layer around it.

use nakika_core::service::service_fn;
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{http_get_via_proxy, HttpServer, ProxyServer, TcpOrigin};
use std::sync::Arc;

fn origin_handler(request: &Request) -> Response {
    match request.uri.path.as_str() {
        "/nakika.js" => Response::ok(
            "application/javascript",
            r#"
                p = new Policy();
                p.url = ["127.0.0.1"];
                p.onResponse = function() {
                    Response.setHeader('X-Processed-By', 'nakika-edge');
                };
                p.register();
            "#,
        )
        .with_header("Cache-Control", "max-age=300"),
        path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
        path => Response::ok(
            "text/html",
            format!("<html><body>content of {path}</body></html>"),
        )
        .with_header("Cache-Control", "max-age=120"),
    }
}

#[test]
fn quickstart_flow_over_localhost_tcp() {
    let origin = HttpServer::start(
        0,
        service_fn(|request: Request, _ctx| Ok(origin_handler(&request))),
    )
    .expect("origin server starts");
    let edge = NodeBuilder::scripted("smoke-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy = ProxyServer::start(0, edge.service()).expect("proxy server starts");

    let page_url = format!("{}/welcome.html", origin.base_url());
    let first = http_get_via_proxy(proxy.addr(), &page_url).expect("first fetch succeeds");
    assert_eq!(first.status, StatusCode::OK);
    assert!(
        !first.body.is_empty(),
        "page body should arrive through the proxy"
    );
    assert_eq!(
        first.headers.get("X-Processed-By"),
        Some("nakika-edge"),
        "the site script must run at the edge"
    );

    // The same page again: served from the proxy cache, still processed.
    let second = http_get_via_proxy(proxy.addr(), &page_url).expect("second fetch succeeds");
    assert_eq!(second.status, StatusCode::OK);
    assert_eq!(second.headers.get("X-Processed-By"), Some("nakika-edge"));

    // A different page misses the cache and goes back to the origin.
    let other_url = format!("{}/other.html", origin.base_url());
    let other = http_get_via_proxy(proxy.addr(), &other_url).expect("third fetch succeeds");
    assert_eq!(other.status, StatusCode::OK);

    let stats = edge.node().stats();
    assert_eq!(stats.requests, 3, "proxy saw all three client requests");
    assert!(
        stats.cache_hits >= 1,
        "the repeated page is served from cache (stats: {stats:?})"
    );
}
