//! End-to-end tests of the v2 streaming `Body` path: truncated upstreams
//! surface as typed errors, and large responses relay through both
//! transports byte-identically while per-connection buffering stays under
//! the bounded window.

use bytes::Bytes;
use nakika_core::service::{buffered_body, service_fn, NakikaError};
use nakika_core::NodeBuilder;
use nakika_http::{Body, ChunkSource, Request, Response, StatusCode, STREAM_CHUNK_BYTES};
use nakika_server::{
    http_fetch, http_fetch_streaming_via_proxy, http_get_via_proxy, HttpServer, ProxyServer,
    TcpOrigin, Transport, OUTPUT_WINDOW_BYTES,
};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// A raw TCP "origin" that promises `claimed` body bytes but sends only
/// `sent` before closing — the misbehaving upstream of the truncation
/// tests.
fn lying_origin(claimed: usize, sent: usize) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            let mut buf = [0u8; 4096];
            // Read until the request head is complete (tests send no body).
            let mut seen = Vec::new();
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => seen.extend_from_slice(&buf[..n]),
                }
            }
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: video/mpeg\r\nContent-Length: {claimed}\r\n\r\n"
            );
            let _ = stream.write_all(head.as_bytes());
            let _ = stream.write_all(&vec![0x2a; sent]);
            // Dropping the stream closes the connection mid-body.
        }
    });
    addr
}

#[test]
fn content_length_mismatch_surfaces_as_upstream_error() {
    let origin = lying_origin(100_000, 500);
    let url = format!("http://{origin}/movie.mpg");

    // The buffered convenience client refuses to hand back a short body.
    match http_fetch(&Request::get(&url)) {
        Err(NakikaError::Upstream { reason, .. }) => {
            assert!(
                reason.contains("got 500 of 100000"),
                "reason names the byte counts: {reason}"
            );
        }
        other => panic!("expected an upstream error, got {other:?}"),
    }

    // And the platform's default status mapping turns it into a 502.
    let err = http_fetch(&Request::get(&url)).unwrap_err();
    assert_eq!(err.status(), StatusCode::BAD_GATEWAY);
    let rendered = err.to_response();
    assert_eq!(rendered.status, StatusCode::BAD_GATEWAY);
    assert_eq!(rendered.headers.get("X-Nakika-Error"), Some("upstream"));
}

#[test]
fn node_buffering_point_converts_truncation_into_502() {
    let origin = lying_origin(64 * 1024, 1024);
    // A node relaying the lying origin, with an explicit buffering point
    // stacked on top (the same adapter `Layer::requires_full_body` layers
    // get): the stream failure becomes a typed error, not a short body.
    let edge = NodeBuilder::plain_proxy("truncation-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let stack = buffered_body(edge.service());
    let request = Request::get(&format!("http://{origin}/big.bin"));
    match stack.call(request, &nakika_core::service::RequestCtx::at(5)) {
        Err(NakikaError::Upstream { reason, .. }) => {
            assert!(reason.contains("got 1024 of 65536"), "reason: {reason}");
        }
        other => panic!("expected an upstream error, got {other:?}"),
    }
    // Nothing that failed mid-stream may have been cached.
    assert_eq!(edge.node().cache_stats().inserts, 0);
}

/// A deterministic pattern source: `total` bytes of a repeating sequence,
/// generated on the fly so no side of the test holds the body in memory.
struct PatternSource {
    produced: usize,
    total: usize,
}

fn pattern_byte(i: usize) -> u8 {
    ((i * 31 + i / 251) % 251) as u8
}

impl ChunkSource for PatternSource {
    fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
        if self.produced >= self.total {
            return Ok(None);
        }
        let n = (self.total - self.produced).min(STREAM_CHUNK_BYTES);
        let chunk: Vec<u8> = (self.produced..self.produced + n)
            .map(pattern_byte)
            .collect();
        self.produced += n;
        Ok(Some(Bytes::from(chunk)))
    }
}

const LARGE_BODY_BYTES: usize = 8 * 1024 * 1024;

fn pattern_origin(declare_length: bool) -> Arc<dyn nakika_core::service::HttpService> {
    service_fn(move |_req: Request, _ctx| {
        let source = PatternSource {
            produced: 0,
            total: LARGE_BODY_BYTES,
        };
        let declared = declare_length.then_some(LARGE_BODY_BYTES as u64);
        let mut response = Response::ok_stream("application/octet-stream", source, declared);
        response.headers.set("Cache-Control", "no-store");
        Ok(response)
    })
}

#[test]
fn large_bodies_relay_byte_identical_with_bounded_buffering() {
    // Both transports, and both wire framings: a declared Content-Length
    // and an undeclared (chunked) stream.
    for transport in [Transport::Threaded, Transport::Reactor] {
        for declare_length in [true, false] {
            let origin = HttpServer::start(0, pattern_origin(declare_length)).unwrap();
            // A small cache keeps the 8 MiB relay out of the tee budget, so
            // this test isolates pure transport buffering.
            let edge = Arc::new(
                NodeBuilder::plain_proxy("large-body-edge")
                    .cache_capacity_bytes(64 * 1024)
                    .origin(Arc::new(TcpOrigin::new()))
                    .build(),
            );
            let proxy = ProxyServer::start_with(0, edge.service(), transport).unwrap();
            let url = format!("{}/large.bin", origin.base_url());

            // Each server carries its own high-water gauge (freshly zero for
            // these just-started servers), so concurrently running tests
            // cannot contaminate the measurement.
            let mut response =
                http_fetch_streaming_via_proxy(proxy.addr(), &Request::get(&url)).unwrap();
            assert_eq!(response.status, StatusCode::OK);

            // Drain the stream chunk by chunk, verifying the pattern so the
            // test never holds the 8 MiB body either.
            let mut offset = 0usize;
            let mut body = std::mem::take(&mut response.body);
            while let Some(chunk) = body.read_chunk().unwrap() {
                for (i, byte) in chunk.iter().enumerate() {
                    assert_eq!(
                        *byte,
                        pattern_byte(offset + i),
                        "byte {} differs ({transport:?}, declared={declare_length})",
                        offset + i
                    );
                }
                offset += chunk.len();
            }
            assert_eq!(
                offset, LARGE_BODY_BYTES,
                "full body arrived ({transport:?}, declared={declare_length})"
            );

            // The instrumented chunk accounting across *every* connection in
            // the chain (origin server + proxy, both nakika transports) must
            // stay under the bounded output window.
            let peak = origin
                .peak_buffered_output()
                .max(proxy.peak_buffered_output());
            assert!(
                peak <= OUTPUT_WINDOW_BYTES,
                "peak buffered output {peak} exceeds the {OUTPUT_WINDOW_BYTES} window \
                 ({transport:?}, declared={declare_length})"
            );
            assert!(peak > 0, "the workload exercised the instrumented path");
            // An 8 MiB body never fit the 64 KiB cache: it streamed through
            // uncached rather than being buffered for admission.
            assert_eq!(edge.node().cache_stats().inserts, 0);
        }
    }
}

#[test]
fn streamed_responses_within_budget_still_warm_the_cache() {
    // A moderate body (1 MiB) under the default entry budget: the tee must
    // capture it while relaying, so the second request is a cache hit and
    // byte-identical.
    let body: Vec<u8> = (0..1024 * 1024).map(pattern_byte).collect();
    let origin_body = body.clone();
    let origin = HttpServer::start(
        0,
        service_fn(move |_req: Request, _ctx| {
            let chunks: Vec<Bytes> = origin_body
                .chunks(STREAM_CHUNK_BYTES)
                .map(Bytes::copy_from_slice)
                .collect();
            let mut response = Response::new(StatusCode::OK);
            response.headers.set("Cache-Control", "max-age=600");
            response.body = Body::stream_from_iter(chunks, Some(1024 * 1024));
            Ok(response)
        }),
    )
    .unwrap();
    let edge = Arc::new(
        NodeBuilder::plain_proxy("tee-edge")
            .origin(Arc::new(TcpOrigin::new()))
            .build(),
    );
    let proxy = ProxyServer::start(0, edge.service()).unwrap();
    let url = format!("{}/warm.bin", origin.base_url());

    let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
    assert_eq!(first.body.to_bytes().to_vec(), body);
    let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
    assert_eq!(second.body.to_bytes().to_vec(), body);
    let stats = edge.node().cache_stats();
    assert_eq!(
        stats.inserts, 1,
        "the streamed body was teed into the cache"
    );
    assert!(stats.hits >= 1, "the second request hit the cache");
}
