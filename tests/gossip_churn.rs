//! Membership churn over real processes: a cluster that bootstraps itself
//! from a single `--join` seed, converges to the full roster over gossip,
//! and survives a member being SIGKILLed mid-traffic — the survivors
//! detect the death through the failure detector alone (no exit
//! notification of any kind), drop the dead node from their overlays, and
//! stop routing keys to it.

use nakika_bench::cluster::{fetch_stats, spawn_gossip_cluster, wait_for_members};
use nakika_core::service::service_fn;
use nakika_http::{Request, Response};
use nakika_server::{http_get_via_proxy, HttpServer};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn proxy_addr(base_url: &str) -> SocketAddr {
    base_url
        .strip_prefix("http://")
        .expect("http base url")
        .parse()
        .expect("socket address")
}

#[test]
fn owner_redirects_send_clients_to_the_live_owner() {
    let origin_hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&origin_hits);
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(Response::ok(
                "text/html",
                format!("<html>copy of {}</html>", req.uri.path),
            )
            .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin failed to start");

    let nodes = spawn_gossip_cluster(
        Path::new(env!("CARGO_BIN_EXE_edge-node")),
        &[],
        &["redir-a", "redir-b"],
        &[
            "--probe-interval-ms",
            "50",
            "--suspect-timeout-ms",
            "400",
            "--redirect-to-owner",
        ],
    )
    .expect("cluster failed to start");
    let urls: Vec<String> = nodes.iter().map(|n| n.base_url.clone()).collect();
    let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
    wait_for_members(&url_refs, 2, Duration::from_secs(15)).expect("roster never converged");

    // Ask A for fresh keys until one hashes to B: that request must come
    // back as a 307 naming B, not be relayed.  Keys A owns itself are
    // served locally (one origin fetch each); a redirected key must not
    // touch the origin at all.
    let mut served_locally = 0u64;
    let (key, redirect) = (0..32)
        .find_map(|i| {
            let key = format!("{}/owner/{i}.html", origin.base_url());
            let response =
                http_get_via_proxy(proxy_addr(&nodes[0].base_url), &key).expect("probe fetch");
            if response.status.as_u16() == 307 {
                return Some((key, response));
            }
            served_locally += 1;
            None
        })
        .expect("32 keys and none owned by the other node");
    let location = redirect
        .headers
        .get("Location")
        .expect("a 307 without Location")
        .to_string();
    assert!(
        location.starts_with(&nodes[1].base_url),
        "Location {location} does not point at the owner {}",
        nodes[1].base_url
    );
    assert_eq!(
        origin_hits.load(Ordering::SeqCst),
        served_locally,
        "a redirected request must not touch the origin"
    );

    // The client follows by re-issuing the request through the owner, which
    // serves (and caches) it as usual; the redirect shows up in A's stats.
    let followed = http_get_via_proxy(proxy_addr(&nodes[1].base_url), &key).expect("follow");
    assert!(followed.status.is_success());
    assert_eq!(origin_hits.load(Ordering::SeqCst), served_locally + 1);
    let stats = fetch_stats(&nodes[0].base_url).expect("stats via a");
    assert!(
        stats["owner_redirects"] >= 1,
        "owner_redirects counter never moved: {stats:?}"
    );
}

#[test]
fn single_seed_bootstrap_converges_and_survives_a_killed_member() {
    let origin_hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&origin_hits);
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(Response::ok(
                "text/html",
                format!("<html>copy of {}</html>", req.uri.path),
            )
            .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin failed to start");

    // Aggressive gossip timing keeps the test fast; the defaults only
    // stretch the same transitions out.
    let mut nodes = spawn_gossip_cluster(
        Path::new(env!("CARGO_BIN_EXE_edge-node")),
        &[],
        &["alpha", "beta", "gamma"],
        &["--probe-interval-ms", "50", "--suspect-timeout-ms", "400"],
    )
    .expect("cluster failed to start");
    let urls: Vec<String> = nodes.iter().map(|n| n.base_url.clone()).collect();
    let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();

    // Only the seed's address was ever configured, yet every roster
    // converges to all three members.
    wait_for_members(&url_refs, 3, Duration::from_secs(15))
        .expect("single-seed bootstrap did not converge");

    // The gossip-learned addresses carry real traffic: a key cached on one
    // node is peer-served from the other two without another origin fetch.
    let shared = format!("{}/shared/page.html", origin.base_url());
    let first = http_get_via_proxy(proxy_addr(&nodes[0].base_url), &shared)
        .expect("first fetch")
        .body
        .to_bytes();
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);
    for node in &nodes {
        let body = http_get_via_proxy(proxy_addr(&node.base_url), &shared)
            .expect("fetch via node")
            .body
            .to_bytes();
        assert_eq!(body, first, "node {} served different bytes", node.name);
    }
    assert_eq!(
        origin_hits.load(Ordering::SeqCst),
        1,
        "the shared key must be fetched from the origin exactly once"
    );

    // Kill gamma outright — SIGKILL, no shutdown handshake.  The survivors
    // only learn of it through failed probes.
    let victim = nodes.pop().expect("three nodes");
    let mut victim = victim;
    victim.kill().expect("kill gamma");
    drop(victim);

    // Drive traffic through the survivors while they converge; requests
    // must keep succeeding throughout (dead-owner fetches fall back to the
    // origin until the roster re-homes them).
    let survivors: Vec<&str> = url_refs[..2].to_vec();
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut round = 0u64;
    loop {
        for (i, url) in survivors.iter().enumerate() {
            let key = format!("{}/churn/{round}-{i}.html", origin.base_url());
            let response = http_get_via_proxy(proxy_addr(url), &key).expect("churn fetch");
            assert!(
                response.status.is_success(),
                "request failed during churn via {url}"
            );
        }
        round += 1;
        let converged = survivors.iter().all(|url| {
            fetch_stats(url).is_ok_and(|stats| {
                stats.get("gossip_faulty").copied() == Some(1)
                    && stats.get("gossip_alive").copied() == Some(2)
            })
        });
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "survivors never declared the killed node faulty"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Re-homed: with gamma failed out of every survivor's overlay, fresh
    // keys route only to live owners, so peer fetches stop failing.
    let baseline: u64 = survivors
        .iter()
        .map(|url| fetch_stats(url).expect("stats")["peer_misses"])
        .sum();
    for i in 0..12 {
        let key = format!("{}/rehomed/{i}.html", origin.base_url());
        let url = survivors[i % survivors.len()];
        let response = http_get_via_proxy(proxy_addr(url), &key).expect("re-homed fetch");
        assert!(response.status.is_success());
    }
    let after: u64 = survivors
        .iter()
        .map(|url| fetch_stats(url).expect("stats")["peer_misses"])
        .sum();
    assert_eq!(
        after, baseline,
        "peer_misses kept growing after the roster re-homed the dead node's keys"
    );
}
