//! Concurrency soak: 64 simultaneous keep-alive clients against both
//! transports, asserting byte-identical responses and coherent aggregated
//! cache statistics across the sharded proxy cache.
//!
//! This is the test the reactor transport exists to pass: the threaded
//! server holds 64 parked threads, the reactor holds 64 slab slots — both
//! must serve exactly the same bytes through exactly the same
//! `HttpService` stack, and the sharded cache must account every lookup.

use nakika_core::service::service_fn;
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{HttpServer, ProxyClient, ProxyServer, TcpOrigin, Transport};
use std::collections::BTreeMap;
use std::sync::Arc;

const CLIENTS: usize = 64;
const REQUESTS_PER_CLIENT: usize = 8;
const DISTINCT_URLS: usize = 16;
const SHARDS: usize = 8;

/// The exact body the origin serves for `/soak/<i>.html` — clients verify
/// responses byte-for-byte against this.
fn expected_body(i: usize) -> String {
    format!("soak body {i}: {}", "x".repeat(512 + i))
}

fn start_origin() -> HttpServer {
    HttpServer::start(
        0,
        service_fn(|req: Request, _ctx| {
            let name = req
                .uri
                .path
                .trim_start_matches("/soak/")
                .trim_end_matches(".html");
            let i: usize = name.parse().unwrap_or(0);
            Ok(Response::ok("text/html", expected_body(i))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .expect("origin starts")
}

/// Runs the soak against one transport and returns the url → body map the
/// clients observed.
fn soak(transport: Transport) -> BTreeMap<String, String> {
    let origin = start_origin();
    let edge = Arc::new(
        NodeBuilder::plain_proxy("soak-edge")
            .cache_shards(SHARDS)
            .origin(Arc::new(TcpOrigin::new()))
            .build(),
    );
    let proxy = ProxyServer::start_with(0, edge.service(), transport).expect("proxy starts");

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = proxy.addr();
            let base = origin.base_url();
            std::thread::spawn(move || {
                let mut client = ProxyClient::connect(addr).expect("client connects");
                let mut seen = BTreeMap::new();
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = (c + r) % DISTINCT_URLS;
                    let url = format!("{base}/soak/{i}.html");
                    let response = client.get(&url).expect("exchange succeeds");
                    assert_eq!(response.status, StatusCode::OK);
                    let body = response.body.to_text();
                    assert_eq!(
                        body,
                        expected_body(i),
                        "byte-identical response for {url} on {transport:?}"
                    );
                    seen.insert(format!("/soak/{i}.html"), body);
                }
                seen
            })
        })
        .collect();

    let mut all = BTreeMap::new();
    for worker in workers {
        all.extend(worker.join().expect("soak client panicked"));
    }

    // Every request performed exactly one cache lookup; the aggregate over
    // shards must account for all of them.
    let stats = edge.node().cache_stats();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        total,
        "every request is one lookup ({transport:?})"
    );
    assert!(
        stats.misses >= DISTINCT_URLS as u64,
        "each distinct URL missed at least once ({transport:?})"
    );
    assert!(
        stats.hits >= total - stats.misses,
        "the rest were hits ({transport:?})"
    );
    assert_eq!(
        stats.inserts, stats.misses,
        "every miss fetched and stored ({transport:?})"
    );
    assert_eq!(stats.evictions, 0, "nothing evicted ({transport:?})");

    // The per-shard breakdown sums exactly to the aggregate, and the keys
    // actually spread across shards.
    let per_shard = edge.node().cache().shard_stats();
    assert_eq!(per_shard.len(), SHARDS);
    let summed = per_shard
        .iter()
        .fold(nakika_core::cache::CacheStats::default(), |a, s| a.merge(s));
    assert_eq!(summed, stats, "shard stats aggregate ({transport:?})");
    assert!(
        per_shard.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
        "lookups spread across shards ({transport:?})"
    );

    assert_eq!(all.len(), DISTINCT_URLS);
    all
}

#[test]
fn sixty_four_keepalive_clients_get_identical_bytes_on_both_transports() {
    let threaded = soak(Transport::Threaded);
    let reactor = soak(Transport::Reactor);
    assert_eq!(
        threaded, reactor,
        "the two transports serve byte-identical responses"
    );
}
