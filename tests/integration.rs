//! Workspace integration tests spanning crates: a whole Na Kika deployment
//! (overlay + several nodes + hard state + integrity) exercised through the
//! public APIs, plus the paper's three §5.4 extensions composed end to end.

use nakika_core::node::{origin_from_fn, OriginFetch};
use nakika_core::scripts;
use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::vocab::make_image;
use nakika_core::NodeBuilder;
use nakika_http::pattern::Cidr;
use nakika_http::{Request, Response, StatusCode};
use nakika_integrity::{sign_response, verify_response, SigningKey};
use nakika_overlay::{key_for, Location, Overlay};
use nakika_state::{MessageBus, ReplicationManager, ReplicationStrategy, SiteStore, Update};
use std::sync::Arc;

fn scripted_origin(site_script: &'static str) -> Arc<dyn OriginFetch> {
    origin_from_fn(move |request: &Request| match request.uri.path.as_str() {
        "/nakika.js" => Response::ok("application/javascript", site_script)
            .with_header("Cache-Control", "max-age=300"),
        path if path.ends_with("wall.js") => {
            Response::ok("application/javascript", scripts::EMPTY_WALL)
                .with_header("Cache-Control", "max-age=300")
        }
        path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
        path if path.ends_with(".png") => Response::ok("image/png", make_image("png", 800, 600))
            .with_header("Cache-Control", "max-age=600"),
        path => Response::ok("text/html", format!("<html><body>{path}</body></html>"))
            .with_header("Cache-Control", "max-age=120"),
    })
}

#[test]
fn multi_node_deployment_shares_cached_content_through_the_overlay() {
    let overlay = Arc::new(Overlay::with_defaults());
    let origin = scripted_origin(scripts::EMPTY_WALL);
    let mut nodes = Vec::new();
    for i in 0..4 {
        let id = key_for(&format!("edge-{i}"));
        overlay.join(id, Location::new(i as f64, 0.0));
        let edge = NodeBuilder::proxy_with_dht(&format!("edge-{i}"))
            .overlay(overlay.clone(), id)
            .origin(origin.clone())
            .build();
        nodes.push(edge);
    }
    // A flash crowd for one URL hits every node.
    for round in 0..3u64 {
        for edge in &nodes {
            let resp = edge
                .call(
                    Request::get("http://hot.example.org/slashdotted.html"),
                    &RequestCtx::at(10 + round),
                )
                .unwrap();
            assert_eq!(resp.status, StatusCode::OK);
        }
    }
    let total_origin: u64 = nodes.iter().map(|n| n.node().stats().origin_fetches).sum();
    let total_peer: u64 = nodes.iter().map(|n| n.node().stats().peer_hits).sum();
    assert_eq!(
        total_origin, 1,
        "one cached copy anywhere avoids further origin accesses (got {total_origin})"
    );
    assert!(total_peer >= 1, "later nodes fetched from peers");
}

#[test]
fn annotation_service_interposes_on_the_simms_as_in_the_paper() {
    // The paper's §5.4 annotations extension: a site *outside* the medical
    // school interposes on the SIMMs by rewriting the request URL to the
    // original content and scheduling the SIMMs' own stage after itself; its
    // onResponse then runs last and injects the annotation widget into the
    // HTML the SIMM stage rendered.
    const NOTES_SITE: &str = r#"
        p = new Policy();
        p.url = ["notes.example.org"];
        p.nextStages = ["http://simms.med.nyu.edu/nakika.js"];
        p.onRequest = function() {
            Request.setUrl('http://simms.med.nyu.edu' + Request.path);
        };
        p.onResponse = function() {
            var buff = null, body = new ByteArray();
            while (buff = Response.read()) { body.append(buff); }
            var html = body.toString().replace('</body>',
                '<div class="nakika-annotations">No annotations yet.</div></body>');
            Response.setHeader('Content-Length', html.length);
            Response.write(html);
        };
        p.register();
    "#;
    const SIMM_SITE: &str = r#"
        p = new Policy();
        p.url = ["simms.med.nyu.edu"];
        p.onResponse = function() {
            if (Response.contentType != 'text/xml') { return; }
            var buff = null, body = new ByteArray();
            while (buff = Response.read()) { body.append(buff); }
            var html = '<html><body>' + Xml.textOf(body.toString(), 'title') + '</body></html>';
            Response.setHeader('Content-Type', 'text/html');
            Response.write(html);
        };
        p.register();
    "#;
    let origin = origin_from_fn(move |request: &Request| {
        match (request.uri.host.as_str(), request.uri.path.as_str()) {
            ("notes.example.org", "/nakika.js") => {
                Response::ok("application/javascript", NOTES_SITE)
                    .with_header("Cache-Control", "max-age=300")
            }
            ("simms.med.nyu.edu", "/nakika.js") => {
                Response::ok("application/javascript", SIMM_SITE)
                    .with_header("Cache-Control", "max-age=300")
            }
            (_, path) if path.ends_with("wall.js") => {
                Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=300")
            }
            (_, path) if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            _ => Response::ok(
                "text/xml",
                "<lecture><title>Hernia repair</title></lecture>",
            )
            .with_header("Cache-Control", "max-age=30"),
        }
    });
    let edge = NodeBuilder::scripted("edge").origin(origin).build();
    let resp = edge
        .call(
            Request::get("http://notes.example.org/module1/lecture1"),
            &RequestCtx::at(10),
        )
        .unwrap();
    let body = resp.body.to_text();
    assert!(
        body.contains("Hernia repair"),
        "SIMM stage rendered the XML: {body}"
    );
    assert!(
        body.contains("nakika-annotations"),
        "annotation stage wrapped the rendered page: {body}"
    );
}

#[test]
fn security_policies_and_resource_controls_protect_a_node() {
    let wall: &'static str = scripts::DIGITAL_LIBRARY_POLICY;
    let edge = NodeBuilder::scripted("edge")
        .local_network(Cidr::parse("10.0.0.0/8").unwrap())
        .control_period_secs(1)
        .origin_fn(move |request: &Request| match request.uri.path.as_str() {
            "/clientwall.js" => Response::ok("application/javascript", wall)
                .with_header("Cache-Control", "max-age=300"),
            path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
            _ => Response::ok("text/html", "article").with_header("Cache-Control", "max-age=60"),
        })
        .build();
    let blocked = edge
        .call(
            Request::get("http://content.nejm.org/cgi/reprint/x")
                .with_client_ip("198.51.100.7".parse().unwrap()),
            &RequestCtx::at(10),
        )
        .unwrap();
    assert_eq!(blocked.status, StatusCode::UNAUTHORIZED);
    let allowed = edge
        .call(
            Request::get("http://content.nejm.org/cgi/reprint/x")
                .with_client_ip("10.3.2.1".parse().unwrap()),
            &RequestCtx::at(11),
        )
        .unwrap();
    assert_eq!(allowed.status, StatusCode::OK);
}

#[test]
fn hard_state_replicates_across_nodes_and_survives_conflicts() {
    let bus = MessageBus::new();
    let managers: Vec<ReplicationManager> = (0..3)
        .map(|i| {
            ReplicationManager::new(
                &format!("edge-{i}"),
                "spec.example.org",
                Arc::new(SiteStore::new(1 << 20)),
                bus.clone(),
                ReplicationStrategy::AllNodes,
                "edge-0",
            )
        })
        .collect();
    managers[0]
        .accept_local_update(&Update {
            site: "spec.example.org".into(),
            key: "user:alice".into(),
            value: "profile-v1".into(),
            timestamp: 10,
        })
        .unwrap();
    managers[2]
        .accept_local_update(&Update {
            site: "spec.example.org".into(),
            key: "user:alice".into(),
            value: "profile-v2".into(),
            timestamp: 20,
        })
        .unwrap();
    for _ in 0..2 {
        for m in &managers {
            m.process_incoming();
        }
    }
    for m in &managers {
        assert_eq!(
            m.get("spec.example.org", "user:alice").as_deref(),
            Some("profile-v2"),
            "last writer wins everywhere"
        );
    }
}

#[test]
fn content_integrity_protects_against_a_tampering_cache() {
    let key = SigningKey::new(b"med-school-origin-key");
    let mut response = Response::ok("text/html", "<p>study: treatment works</p>");
    sign_response(&mut response, &key, 1_000, 3_600);
    // An honest edge node forwards the response unchanged.
    assert!(verify_response(&response, &key, 2_000).is_ok());
    // A malicious node falsifies the study results.
    let mut tampered = response.clone();
    tampered.set_body("<p>study: treatment is useless</p>");
    assert!(verify_response(&tampered, &key, 2_000).is_err());
    // Stale replay after expiration is also caught.
    assert!(verify_response(&response, &key, 10_000).is_err());
}

#[test]
fn na_kika_pages_run_with_hard_state_on_the_edge() {
    const GUESTBOOK: &str = r#"
        p = new Policy();
        p.url = ["guestbook.example.org/sign"];
        p.onRequest = function() {
            var name = Request.query('name');
            HardState.put('entry:' + name, name);
            Request.respond('text/html', '<p>thanks, ' + name + '</p>');
        };
        p.register();
    "#;
    let origin = origin_from_fn(move |request: &Request| match request.uri.path.as_str() {
        "/nakika.js" => Response::ok("application/javascript", GUESTBOOK)
            .with_header("Cache-Control", "max-age=300"),
        path if path.ends_with(".js") => Response::error(StatusCode::NOT_FOUND),
        "/view.nkp" => Response::ok(
            "text/nkp",
            "<ul><?nkp var names = HardState.keys('entry:'); \
             for (var i = 0; i < names.length; i++) { echo('<li>' + names[i] + '</li>'); } ?></ul>",
        )
        .with_header("Cache-Control", "no-store"),
        _ => Response::error(StatusCode::NOT_FOUND),
    });
    let edge = NodeBuilder::scripted("edge").origin(origin).build();
    for name in ["ada", "grace"] {
        let resp = edge
            .call(
                Request::get(&format!("http://guestbook.example.org/sign?name={name}")),
                &RequestCtx::at(10),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
    }
    let view = edge
        .call(
            Request::get("http://guestbook.example.org/view.nkp"),
            &RequestCtx::at(20),
        )
        .unwrap();
    let body = view.body.to_text();
    assert!(
        body.contains("<li>entry:ada</li>") && body.contains("<li>entry:grace</li>"),
        "{body}"
    );
    assert_eq!(view.headers.content_type(), Some("text/html"));
}
