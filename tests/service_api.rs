//! Tests of the `HttpService` boundary itself: time injection through
//! `Clock`/`RequestCtx`, middleware composition order, and the typed
//! `NakikaError` → status-code mapping both in-process and over real TCP.

use nakika_core::middleware::{AccessLogLayer, AdmissionLayer};
use nakika_core::resource::{ResourceKind, ResourceManager, ResourceManagerConfig};
use nakika_core::service::{
    layered, service_fn, Clock, CtxFactory, HttpService, ManualClock, NakikaError, RequestCtx,
};
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{http_get, HttpServer};
use nakika_state::AccessLog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A `ManualClock` drives cache expiry through `RequestCtx` arrival times:
/// the same request is a hit while fresh and goes back to the origin once
/// the manually advanced clock passes the entry's lifetime.
#[test]
fn manual_clock_drives_cache_expiry_through_request_ctx() {
    let clock = Arc::new(ManualClock::new(100));
    let ctx_factory = CtxFactory::new(clock.clone() as Arc<dyn Clock>);
    let hits = Arc::new(AtomicU64::new(0));
    let origin_hits = hits.clone();
    let edge = NodeBuilder::plain_proxy("clock-edge")
        .origin_fn(move |_req: &Request| {
            origin_hits.fetch_add(1, Ordering::SeqCst);
            Response::ok("text/html", "fresh for two minutes")
                .with_header("Cache-Control", "max-age=120")
        })
        .build();
    let request = || Request::get("http://site.example/page");
    let client = "10.0.0.1".parse().unwrap();

    edge.call(request(), &ctx_factory.make(client)).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1, "cold cache fetches");

    clock.advance(60);
    edge.call(request(), &ctx_factory.make(client)).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1, "still fresh at +60 s");

    clock.advance(120);
    edge.call(request(), &ctx_factory.make(client)).unwrap();
    assert_eq!(
        hits.load(Ordering::SeqCst),
        2,
        "expired at +180 s, refetched"
    );
    assert_eq!(edge.node().stats().cache_hits, 1);
}

/// Builds a resource manager whose `hog.example` site is deterministically
/// terminated (congested across two control rounds).
fn terminated_manager() -> Arc<ResourceManager> {
    let mut config = ResourceManagerConfig::default();
    config.capacity.insert(ResourceKind::Cpu, 1.0);
    let resource = Arc::new(ResourceManager::new(config));
    for _ in 0..2 {
        resource.record("hog.example", ResourceKind::Cpu, 1_000.0);
        resource.control();
    }
    resource
}

/// Logging wraps admission wraps the pipeline: the access log (outermost)
/// records even the exchanges admission rejects, while the pipeline
/// (innermost) never sees them.
#[test]
fn middleware_ordering_logging_wraps_admission_wraps_pipeline() {
    let events: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let pipeline_events = events.clone();
    let pipeline = service_fn(move |_req, _ctx| {
        pipeline_events.lock().push("pipeline");
        Ok(Response::ok("text/plain", "served"))
    });
    let log = Arc::new(AccessLog::new());
    let stack = layered(
        pipeline,
        vec![
            Box::new(AccessLogLayer::new(log.clone())),
            Box::new(AdmissionLayer::new(terminated_manager())),
        ],
    );

    // The terminated site: admission rejects before the pipeline runs, and
    // the outer logging layer still records the rejection's status mapping.
    let rejected = stack.call(Request::get("http://hog.example/x"), &RequestCtx::at(0));
    assert!(matches!(
        rejected,
        Err(NakikaError::Terminated { ref site } | NakikaError::Throttled { ref site })
            if site == "hog.example"
    ));
    assert!(events.lock().is_empty(), "the pipeline never ran");
    assert_eq!(log.pending("hog.example"), 1, "the rejection was logged");

    // A well-behaved site flows through all three layers.
    let ok = stack
        .call(Request::get("http://good.example/x"), &RequestCtx::at(0))
        .unwrap();
    assert_eq!(ok.status, StatusCode::OK);
    assert_eq!(events.lock().as_slice(), ["pipeline"]);
    assert_eq!(log.pending("good.example"), 1);

    log.configure_site("hog.example", Some("http://hog.example/log-sink"));
    let batches = log.flush();
    assert!(
        batches.iter().any(|(_, body)| body.contains(" 503 ")),
        "the logged rejection carries the 503 mapping: {batches:?}"
    );
}

/// Each `NakikaError` variant maps to its documented status code, both via
/// `to_response` and at the TCP wire where a real transport does the mapping.
#[test]
fn typed_errors_map_to_status_codes_at_the_transport() {
    let cases: Vec<(NakikaError, StatusCode)> = vec![
        (
            NakikaError::Throttled {
                site: "a.example".into(),
            },
            StatusCode::SERVICE_UNAVAILABLE,
        ),
        (
            NakikaError::Terminated {
                site: "a.example".into(),
            },
            StatusCode::SERVICE_UNAVAILABLE,
        ),
        (
            NakikaError::Upstream {
                url: "http://o.example/x".into(),
                reason: "connect failed".into(),
            },
            StatusCode::BAD_GATEWAY,
        ),
        (
            NakikaError::Integrity {
                url: "http://o.example/x".into(),
                reason: "body hash mismatch".into(),
            },
            StatusCode::BAD_GATEWAY,
        ),
        (
            NakikaError::Internal("invariant broken".into()),
            StatusCode::INTERNAL_SERVER_ERROR,
        ),
    ];
    for (error, status) in &cases {
        assert_eq!(error.status(), *status, "{error}");
        let response = error.to_response();
        assert_eq!(response.status, *status);
        assert_eq!(
            response.headers.get("X-Nakika-Error"),
            Some(error.kind()),
            "{error}"
        );
    }

    // Over a real socket: the server transport renders the service's typed
    // error, with the kind header and the reason in the body.
    let server = HttpServer::start(
        0,
        service_fn(|_req, _ctx| {
            Err(NakikaError::Upstream {
                url: "http://origin.example/dead".into(),
                reason: "no route to origin".into(),
            })
        }),
    )
    .unwrap();
    let response = http_get(&format!("{}/x", server.base_url())).unwrap();
    assert_eq!(response.status, StatusCode::BAD_GATEWAY);
    assert_eq!(response.headers.get("X-Nakika-Error"), Some("upstream"));
    assert!(response.body.to_text().contains("no route to origin"));
}
