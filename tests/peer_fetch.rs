//! Cooperative peer fetching over real TCP, in-process: two edge nodes on
//! ephemeral localhost ports sharing one overlay view, with a counting
//! origin so every test can assert exactly who fetched what from where.
//!
//! The multi-process version of this story (one OS process per node,
//! stdio handshake) lives in `tests/edge_cluster.rs`; the protocol itself
//! is documented in `docs/CLUSTER.md`.

use nakika_bench::cluster::{fetch_stats, start_local_node, ClusterService, LocalNode};
use nakika_core::peering::{PEER_HOP_HEADER, PEER_VIA_HEADER};
use nakika_core::service::service_fn;
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response};
use nakika_overlay::{key_for, Location, Overlay};
use nakika_server::{
    http_fetch_streaming_via_proxy, http_get_via_proxy, HttpServer, ProxyServer, TcpOrigin,
    Transport,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An origin that counts every fetch that reaches it.
fn counting_origin() -> (HttpServer, Arc<AtomicU64>) {
    let hits = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&hits);
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(
                Response::ok("text/html", format!("origin copy of {}", req.uri.path))
                    .with_header("Cache-Control", "max-age=600"),
            )
        }),
    )
    .expect("origin failed to start");
    (origin, hits)
}

/// The node stack's cache key for a GET of `url` (method + origin-form
/// URI); the tests use it to plant consistent-hash owners for a key.
fn get_key(url: &str) -> String {
    format!("GET {}", Request::get(url).uri.to_origin())
}

#[test]
fn a_miss_is_answered_by_the_peer_that_cached_the_key() {
    let (origin, origin_hits) = counting_origin();
    let overlay = Arc::new(Overlay::with_defaults());
    let a = start_local_node("peer-a", &overlay, Transport::Reactor, None).expect("node a");

    // A fetches and caches the key while it is the only member, so which
    // node the key's consistent hash favors cannot matter yet.
    let url = format!("{}/shared.html", origin.base_url());
    let via_a = http_get_via_proxy(a.server.addr(), &url).expect("fetch via a");
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);

    // Now B joins — on the other transport: the peer path must work
    // across both.
    let b = start_local_node("peer-b", &overlay, Transport::Threaded, None).expect("node b");

    // B has never seen the key: its miss must route to A over TCP, not to
    // the origin, and the bytes must be identical.
    let via_b = http_get_via_proxy(b.server.addr(), &url).expect("fetch via b");
    assert_eq!(via_b.body.to_bytes(), via_a.body.to_bytes());
    assert_eq!(
        origin_hits.load(Ordering::SeqCst),
        1,
        "the peer answered; the origin must not be touched again"
    );
    let stats = fetch_stats(&b.base_url).expect("stats via b");
    assert_eq!(stats["peer_hits"], 1);
    assert_eq!(stats["peer_misses"], 0);
    assert_eq!(stats["origin_fetches"], 0);

    // The peer-fetched copy was teed into B's own cache on the way through.
    let again = http_get_via_proxy(b.server.addr(), &url).expect("refetch via b");
    assert_eq!(again.body.to_bytes(), via_a.body.to_bytes());
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);
    let stats = fetch_stats(&b.base_url).expect("stats via b");
    assert_eq!(stats["cache_hits"], 1);
    assert_eq!(stats["peer_hits"], 1, "second fetch was local, not peered");
}

#[test]
fn a_dead_peer_falls_back_to_the_origin_and_is_counted() {
    let (origin, origin_hits) = counting_origin();
    let overlay = Arc::new(Overlay::with_defaults());
    let a = start_local_node("fallback-a", &overlay, Transport::Reactor, None).expect("node a");

    // Plant a consistent-hash owner for the key whose address nothing
    // listens on (bind an ephemeral port, then free it).
    let url = format!("{}/fallback.html", origin.base_url());
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        format!("http://{}", listener.local_addr().expect("local addr"))
    };
    overlay.join_with_addr(key_for(&get_key(&url)), Location::new(0.0, 0.0), &dead_addr);

    // The client still gets the page: the failed peer attempt falls back
    // to the origin instead of surfacing as an error.
    let response = http_get_via_proxy(a.server.addr(), &url).expect("fetch via a");
    assert_eq!(
        response.body.to_bytes(),
        b"origin copy of /fallback.html".as_slice()
    );
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);

    // And the fallback is visible, not silent.
    let stats = fetch_stats(&a.base_url).expect("stats via a");
    assert_eq!(stats["peer_misses"], 1);
    assert_eq!(stats["peer_hits"], 0);
    assert_eq!(stats["origin_fetches"], 1);
}

#[test]
fn hop_budget_and_via_trail_stop_loops_at_the_tcp_boundary() {
    let (origin, origin_hits) = counting_origin();
    let overlay = Arc::new(Overlay::with_defaults());
    let a = start_local_node("loop-a", &overlay, Transport::Threaded, None).expect("node a");

    // Plant an owner peer for both keys.  If either loop guard fails, the
    // request routes here and shows up in the peer counters.
    let exhausted_url = format!("{}/exhausted.html", origin.base_url());
    let revisited_url = format!("{}/revisited.html", origin.base_url());
    let b = start_local_node("loop-b", &overlay, Transport::Threaded, None).expect("node b");
    for url in [&exhausted_url, &revisited_url] {
        overlay.join_with_addr(key_for(&get_key(url)), Location::new(0.0, 0.0), &b.base_url);
    }

    // A request that has spent its hop budget goes straight to the origin.
    let request = Request::get(&exhausted_url).with_header(PEER_HOP_HEADER, "2");
    let response = http_fetch_streaming_via_proxy(a.server.addr(), &request).expect("fetch");
    assert_eq!(
        response.body.to_bytes(),
        b"origin copy of /exhausted.html".as_slice()
    );

    // So does one whose Via trail says this node already forwarded it.
    let request = Request::get(&revisited_url)
        .with_header(PEER_HOP_HEADER, "1")
        .with_header(PEER_VIA_HEADER, "loop-b, loop-a");
    let response = http_fetch_streaming_via_proxy(a.server.addr(), &request).expect("fetch");
    assert_eq!(
        response.body.to_bytes(),
        b"origin copy of /revisited.html".as_slice()
    );

    assert_eq!(origin_hits.load(Ordering::SeqCst), 2);
    let stats = fetch_stats(&a.base_url).expect("stats via a");
    assert_eq!(stats["peer_hits"], 0, "loop guards must stop peer routing");
    assert_eq!(stats["peer_misses"], 0);
    assert_eq!(stats["origin_fetches"], 2);
}

#[test]
fn peer_fetches_reuse_one_pooled_keep_alive_connection() {
    let (origin, origin_hits) = counting_origin();
    let overlay = Arc::new(Overlay::with_defaults());
    let a = start_local_node("pool-a", &overlay, Transport::Reactor, None).expect("node a");

    // Warm three keys into A's cache, then plant each key's consistent-hash
    // owner at A's address so B's misses all route there.
    let urls: Vec<String> = (0..3)
        .map(|i| format!("{}/pooled/{i}.html", origin.base_url()))
        .collect();
    for url in &urls {
        http_get_via_proxy(a.server.addr(), url).expect("warm a");
        overlay.join_with_addr(key_for(&get_key(url)), Location::new(0.0, 0.0), &a.base_url);
    }
    assert_eq!(origin_hits.load(Ordering::SeqCst), 3);

    // B is assembled by hand (instead of through `start_local_node`) so the
    // test keeps a handle on its `TcpOrigin` and can watch the pool.
    let fetcher = Arc::new(TcpOrigin::new());
    let id = key_for("pool-b");
    overlay.join(id, Location::new(0.0, 0.0));
    let handle = Arc::new(
        NodeBuilder::proxy_with_dht("pool-b")
            .overlay(Arc::clone(&overlay), id)
            .origin(fetcher.clone())
            .build(),
    );
    let service = Arc::new(ClusterService::new(Arc::clone(&handle), "pool-b"));
    let server = ProxyServer::start_with(0, service, Transport::Threaded).expect("node b");
    let base_url = format!("http://{}", server.addr());
    handle.node().set_public_addr(&base_url);
    overlay.set_addr(id, &base_url);

    // Every fetch via B misses locally and is answered by A over TCP.
    for url in &urls {
        let response = http_get_via_proxy(server.addr(), url).expect("fetch via b");
        assert!(response.status.is_success());
    }
    assert_eq!(
        origin_hits.load(Ordering::SeqCst),
        3,
        "all three fetches must be peer-served, not origin-fetched"
    );
    let stats = fetch_stats(&base_url).expect("stats via b");
    assert_eq!(stats["peer_hits"], 3);

    // One socket carried all three peer fetches: the connection was parked
    // after the first and reused — not re-dialed — by the rest.  A fetcher
    // dialing per request would have parked one idle socket per fetch.
    let peer_addr = a.server.addr();
    assert_eq!(
        fetcher.idle_connections(&peer_addr.ip().to_string(), peer_addr.port()),
        1,
        "peer fetches must share one pooled keep-alive connection"
    );
}

#[test]
fn hot_keys_replicate_to_the_successor_peer() {
    let (origin, origin_hits) = counting_origin();
    let overlay = Arc::new(Overlay::with_defaults());
    // threshold 1: the first local cache hit at the owner marks the key hot.
    let a = start_local_node("repl-a", &overlay, Transport::Reactor, Some((1, 1))).expect("node a");
    let b = start_local_node("repl-b", &overlay, Transport::Reactor, Some((1, 1))).expect("node b");

    let url = format!("{}/hot.html", origin.base_url());
    let owner_member = overlay.owner_of(&get_key(&url)).expect("owner");
    let (owner, successor): (&LocalNode, &LocalNode) = if owner_member.id == key_for("repl-a") {
        (&a, &b)
    } else {
        (&b, &a)
    };

    // Miss (fetches the origin, caches at the owner), then a hit, which
    // crosses the hot threshold and queues a replication push.
    http_get_via_proxy(owner.server.addr(), &url).expect("warm owner");
    http_get_via_proxy(owner.server.addr(), &url).expect("hit owner");

    // The owner's replication worker pushes the key through the
    // successor's proxy asynchronously; wait for it to land.
    let deadline = Instant::now() + Duration::from_secs(10);
    while owner.handle.node().stats().replication_pushes == 0 {
        assert!(
            Instant::now() < deadline,
            "replication push never happened: owner stats {:?}",
            owner.handle.node().stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The successor now holds its own copy: serving the key from it
    // touches neither the origin nor the owner.
    let before = origin_hits.load(Ordering::SeqCst);
    let response = http_get_via_proxy(successor.server.addr(), &url).expect("fetch via successor");
    assert_eq!(
        response.body.to_bytes(),
        b"origin copy of /hot.html".as_slice()
    );
    assert_eq!(origin_hits.load(Ordering::SeqCst), before);
    let stats = fetch_stats(&successor.base_url).expect("successor stats");
    assert_eq!(stats["origin_fetches"], 0);
    assert!(
        stats["cache_hits"] >= 1,
        "the replicated copy must be served from the successor's own cache: {stats:?}"
    );
}
