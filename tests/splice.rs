//! Fault-injection and zero-hand-off pins for the reactor's origin splice.
//!
//! A cache miss on the reactor transport is answered by an event-loop
//! relay: the reactor opens the origin connection itself, in the same
//! poller as the clients, and splices bytes across with no worker-pool
//! hand-off.  These tests pin the three properties that make that safe to
//! rely on:
//!
//! 1. **Zero hand-offs** — a reactor cold miss completes without a single
//!    worker-pool submission (`ServerStats::worker_submissions`), and
//!    turning the splice off (`ReactorConfig::splice_origin = false`)
//!    restores the pooled path with identical bytes.
//! 2. **Truncation is surfaced** — an origin that dies mid-body aborts the
//!    client connection (counted in `ServerStats::relay_aborts`), never
//!    silently repairs the framing.  Both transports agree.
//! 3. **Stalls are evicted** — an origin that accepts and then goes silent
//!    is evicted by the reactor's timer wheel at `idle_timeout_ms` while
//!    64 warm keep-alive clients on the same event loop keep receiving
//!    byte-identical responses.

use nakika_core::service::{service_fn, HttpService};
use nakika_core::{NodeBuilder, NodeHandle};
use nakika_http::{Request, Response, StatusCode};
use nakika_server::{
    http_get_via_proxy, HttpServer, ProxyClient, ProxyServer, ReactorConfig, ReactorServer,
    ServerOptions, TcpOrigin, Transport,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cacheable_origin() -> HttpServer {
    HttpServer::start(
        0,
        service_fn(|req: Request, _ctx| {
            Ok(
                Response::ok("text/html", format!("origin body for {}", req.uri.path))
                    .with_header("Cache-Control", "max-age=600"),
            )
        }),
    )
    .expect("origin starts")
}

fn edge_service() -> (NodeHandle, Arc<dyn HttpService>) {
    let edge = NodeBuilder::plain_proxy("splice-edge")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let service = edge.service();
    (edge, service)
}

#[test]
fn reactor_cold_miss_relays_with_zero_worker_handoffs() {
    let origin = cacheable_origin();
    let urls: Vec<String> = (0..5)
        .map(|i| format!("{}/cold/{i}.html", origin.base_url()))
        .collect();

    // Splice on (the default): every cold miss must be relayed on the
    // event loop — no worker-pool job for the call, none for body pulls.
    let (_edge, service) = edge_service();
    let spliced = ReactorServer::start_with_config(
        0,
        service,
        ReactorConfig {
            reactors: 1,
            workers: 2,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let mut spliced_bodies = Vec::new();
    for url in &urls {
        let response = http_get_via_proxy(spliced.addr(), url).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        spliced_bodies.push(response.body.to_text());
    }
    // A warm re-fetch stays inline, adding neither submissions nor relays.
    let warm = http_get_via_proxy(spliced.addr(), &urls[0]).unwrap();
    assert_eq!(warm.body.to_text(), spliced_bodies[0]);
    assert_eq!(
        spliced.stats().worker_submissions(),
        0,
        "a spliced miss must not touch the worker pool"
    );
    assert_eq!(
        spliced.stats().spliced_relays(),
        urls.len() as u64,
        "every cold miss was relayed on the event loop"
    );
    assert_eq!(spliced.stats().relay_aborts(), 0);

    // Splice off: the same workload rides the worker pool, byte-identical.
    let (_edge, service) = edge_service();
    let pooled = ReactorServer::start_with_config(
        0,
        service,
        ReactorConfig {
            reactors: 1,
            workers: 2,
            splice_origin: false,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let mut pooled_bodies = Vec::new();
    for url in &urls {
        let response = http_get_via_proxy(pooled.addr(), url).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        pooled_bodies.push(response.body.to_text());
    }
    assert_eq!(pooled.stats().spliced_relays(), 0);
    assert!(
        pooled.stats().worker_submissions() >= urls.len() as u64,
        "with the splice disabled every miss is a pool job"
    );
    assert_eq!(spliced_bodies, pooled_bodies, "paths are byte-identical");

    // The threaded transport is untouched by all of this.
    let (_edge, service) = edge_service();
    let threaded = ProxyServer::start_with(0, service, Transport::Threaded).unwrap();
    for (url, expected) in urls.iter().zip(&spliced_bodies) {
        let response = http_get_via_proxy(threaded.addr(), url).unwrap();
        assert_eq!(&response.body.to_text(), expected);
    }
}

/// A raw TCP origin that answers every connection with a 200 head
/// declaring `declared` body bytes but sends only `sent` before closing.
fn truncating_origin(declared: usize, sent: usize) -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            // Read until the request head ends; the test only sends GETs.
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
            }
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\
                 Cache-Control: max-age=600\r\nContent-Length: {declared}\r\n\r\n"
            );
            let _ = stream.write_all(head.as_bytes());
            let _ = stream.write_all(&vec![b'x'; sent]);
            // Dropping the stream here truncates the body mid-flight.
        }
    });
    addr
}

/// Sends one absolute-form GET through the proxy at `proxy` and drains the
/// connection to EOF, returning everything received.
fn raw_proxy_get(proxy: SocketAddr, url: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(proxy).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let host = url.trim_start_matches("http://").split('/').next().unwrap();
    let request = format!("GET {url} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    let mut received = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => received.extend_from_slice(&chunk[..n]),
        }
    }
    received
}

/// Asserts that `received` carries the truncating origin's head but was cut
/// off before the declared body completed.
fn assert_truncated(received: &[u8], declared: usize, transport: &str) {
    let head_end = received
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("{transport}: no response head in {} bytes", received.len()));
    let head = String::from_utf8_lossy(&received[..head_end]);
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "{transport}: the origin's head is relayed before the fault: {head}"
    );
    assert!(
        head.contains(&format!("Content-Length: {declared}")),
        "{transport}: framing is forwarded, not repaired: {head}"
    );
    let body_bytes = received.len() - head_end - 4;
    assert!(
        body_bytes < declared,
        "{transport}: the client must observe the truncation \
         (got {body_bytes} of {declared} declared bytes)"
    );
}

#[test]
fn origin_death_mid_stream_aborts_the_client_on_both_transports() {
    const DECLARED: usize = 256 * 1024;
    const SENT: usize = 8 * 1024;
    let origin = truncating_origin(DECLARED, SENT);
    let url = format!("http://{origin}/dead.html");

    let (_edge, service) = edge_service();
    let reactor = ReactorServer::start_with_config(
        0,
        service,
        ReactorConfig {
            reactors: 1,
            workers: 2,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let received = raw_proxy_get(reactor.addr(), &url);
    assert_truncated(&received, DECLARED, "reactor");
    assert!(
        reactor.stats().relay_aborts() >= 1,
        "the truncation is counted, not silently dropped"
    );
    assert_eq!(
        reactor.stats().worker_submissions(),
        0,
        "the failing relay still never touched the worker pool"
    );

    let (_edge, service) = edge_service();
    let threaded = ProxyServer::start_with(0, service, Transport::Threaded).unwrap();
    let received = raw_proxy_get(threaded.addr(), &url);
    assert_truncated(&received, DECLARED, "threaded");
}

/// A raw TCP origin that accepts, reads the request, and then never
/// answers — the stalled-upstream case the timer wheel must reclaim.
fn stalling_origin() -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            // Hold the socket open without ever writing a byte.
            held.push(stream);
        }
    });
    addr
}

#[test]
fn stalled_origin_is_evicted_while_warm_clients_stay_byte_identical() {
    const WARM_CLIENTS: usize = 64;
    const WARM_REQUESTS: usize = 10;
    const IDLE_TIMEOUT_MS: u64 = 300;

    let origin = cacheable_origin();
    let warm_url = format!("{}/warm.html", origin.base_url());
    let stall = stalling_origin();
    let stall_url = format!("http://{stall}/never.html");

    let (_edge, service) = edge_service();
    // One reactor thread: the stalled upstream shares its event loop with
    // every warm client, so any mishandling (a blocking wait, a leaked
    // slot wedging the poller) would show up as warm-path corruption.
    let server = ReactorServer::start_with_config(
        0,
        service,
        ReactorConfig {
            reactors: 1,
            workers: 2,
            options: ServerOptions {
                idle_timeout_ms: IDLE_TIMEOUT_MS,
                max_connections: 0,
            },
            ..ReactorConfig::default()
        },
    )
    .unwrap();

    // Warm the cache through the real origin.
    let first = http_get_via_proxy(server.addr(), &warm_url).unwrap();
    assert_eq!(first.status, StatusCode::OK);
    let expected = first.body.to_text();

    // Pin the stalled fetch in flight for the whole warm workload.
    let stalled = {
        let addr = server.addr();
        let url = stall_url.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            let response = http_get_via_proxy(addr, &url).expect("eviction answers, not drops");
            (start.elapsed(), response)
        })
    };

    let warm_workers: Vec<_> = (0..WARM_CLIENTS)
        .map(|_| {
            let addr = server.addr();
            let url = warm_url.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = ProxyClient::connect(addr).expect("warm client connects");
                for _ in 0..WARM_REQUESTS {
                    let response = client.get(&url).expect("warm exchange succeeds");
                    assert_eq!(response.status, StatusCode::OK);
                    assert_eq!(
                        response.body.to_text(),
                        expected,
                        "warm bytes unchanged while an upstream stalls"
                    );
                }
            })
        })
        .collect();
    for worker in warm_workers {
        worker.join().expect("warm client panicked");
    }

    let (elapsed, response) = stalled.join().expect("stalled client panicked");
    assert_eq!(
        response.status,
        StatusCode::BAD_GATEWAY,
        "the evicted relay surfaces as an upstream error"
    );
    assert!(
        elapsed >= Duration::from_millis(IDLE_TIMEOUT_MS),
        "the deadline really governed the eviction ({elapsed:?})"
    );
    assert!(
        server.stats().timeouts() >= 1,
        "the timer wheel counted the stalled upstream"
    );
    assert_eq!(
        server.stats().relay_aborts(),
        0,
        "no head was delivered, so nothing was aborted mid-stream"
    );
}
